// Allocator invariants (DESIGN.md #6) and the fragmentation phenomena of
// Sections 4.4.2 / 5.1.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "mem/caching_allocator.h"
#include "mem/workload.h"

namespace helix::mem {
namespace {

constexpr i64 MiB = i64{1} << 20;

TEST(CachingAllocator, BasicAllocFree) {
  CachingAllocator a({.capacity_bytes = 100 * MiB});
  const BlockId b1 = a.allocate(30 * MiB);
  EXPECT_EQ(a.stats().allocated_bytes, 30 * MiB);
  EXPECT_EQ(a.stats().reserved_bytes, 30 * MiB);
  a.free(b1);
  EXPECT_EQ(a.stats().allocated_bytes, 0);
  EXPECT_EQ(a.stats().reserved_bytes, 30 * MiB) << "freed memory stays cached";
  // Reuse from cache: reserved must not grow.
  const BlockId b2 = a.allocate(10 * MiB);
  EXPECT_EQ(a.stats().reserved_bytes, 30 * MiB);
  a.free(b2);
}

TEST(CachingAllocator, RoundsAndRejectsBadArgs) {
  CachingAllocator a({.capacity_bytes = 10 * MiB});
  EXPECT_THROW(a.allocate(0), std::invalid_argument);
  EXPECT_THROW(a.allocate(-5), std::invalid_argument);
  const BlockId b = a.allocate(1);
  EXPECT_EQ(a.stats().allocated_bytes, 512) << "rounded to granularity";
  a.free(b);
  EXPECT_THROW(a.free(b), std::invalid_argument) << "double free";
  EXPECT_THROW(a.free(12345), std::invalid_argument);
}

TEST(CachingAllocator, SplitAndCoalesce) {
  CachingAllocator a({.capacity_bytes = 200 * MiB});
  const BlockId big = a.allocate(100 * MiB);
  a.free(big);
  // Three allocations carved from the cached 100 MiB block.
  const BlockId x = a.allocate(30 * MiB);
  const BlockId y = a.allocate(30 * MiB);
  const BlockId z = a.allocate(30 * MiB);
  EXPECT_EQ(a.stats().reserved_bytes, 100 * MiB);
  EXPECT_EQ(a.stats().num_segments, 1);
  a.free(x);
  a.free(z);
  EXPECT_EQ(a.stats().largest_free_block, 40 * MiB) << "tail 10 + z 30 coalesced";
  a.free(y);
  EXPECT_EQ(a.stats().largest_free_block, 100 * MiB) << "full coalesce";
}

TEST(CachingAllocator, OomReportsFragmentation) {
  CachingAllocator a({.capacity_bytes = 100 * MiB});
  const BlockId b1 = a.allocate(45 * MiB);
  const BlockId b2 = a.allocate(45 * MiB);
  a.free(b1);
  // 45 MiB cached + 10 free capacity, but a 50 MiB request fits neither.
  EXPECT_THROW(a.allocate(50 * MiB), OutOfMemory);
  a.free(b2);
  (void)b2;
}

TEST(CachingAllocator, EmptyCacheReleasesFreeSegments) {
  CachingAllocator a({.capacity_bytes = 200 * MiB});
  const BlockId keep = a.allocate(40 * MiB);
  const BlockId drop = a.allocate(60 * MiB);
  a.free(drop);
  a.empty_cache();
  EXPECT_EQ(a.stats().reserved_bytes, 40 * MiB);
  // The surviving live block must still free correctly after compaction.
  a.free(keep);
  a.empty_cache();
  EXPECT_EQ(a.stats().reserved_bytes, 0);
  EXPECT_EQ(a.stats().num_segments, 0);
}

TEST(CachingAllocator, ExpandableSegmentsNeverStrand) {
  CachingAllocator a({.capacity_bytes = 100 * MiB, .expandable_segments = true});
  // Alternating odd sizes that shatter the classic allocator.
  std::vector<BlockId> live;
  for (int i = 0; i < 10; ++i) {
    live.push_back(a.allocate((3 + i % 5) * MiB));
    const BlockId t = a.allocate(17 * MiB);
    a.free(t);
  }
  // Reserved tracks the live+cached high-water mark without per-size
  // segment stranding: overhead stays small.
  EXPECT_LE(a.stats().peak_reserved, a.stats().peak_allocated + 25 * MiB);
  for (const BlockId b : live) a.free(b);
}

TEST(CachingAllocator, ExpandableGrowsOnlyByUncoveredDelta) {
  // Regression: growing the expandable segment by the full rounded request
  // even when a trailing free block already covered part of it stranded the
  // trailing bytes forever (reserved 20 MiB here instead of 16 MiB).
  CachingAllocator a({.capacity_bytes = 100 * MiB, .expandable_segments = true});
  const BlockId head = a.allocate(10 * MiB);
  const BlockId tail = a.allocate(4 * MiB);
  EXPECT_EQ(a.stats().reserved_bytes, 14 * MiB);
  a.free(tail);  // 4 MiB free block at the segment tail
  const BlockId big = a.allocate(6 * MiB);
  EXPECT_EQ(a.stats().reserved_bytes, 16 * MiB)
      << "grow must cover only the 2 MiB the trailing free block lacks";
  EXPECT_EQ(a.stats().allocated_bytes, 16 * MiB);
  a.free(big);
  a.free(head);
}

TEST(CachingAllocator, ExpandableDeltaGrowFitsWhereFullGrowWouldOom) {
  // Same shape under a 16 MiB cap: the fixed allocator reuses the trailing
  // 4 MiB and only reserves 2 MiB more; the old full-`bytes` grow needed
  // reserved 14 + 6 = 20 MiB and threw OutOfMemory.
  CachingAllocator a({.capacity_bytes = 16 * MiB, .expandable_segments = true});
  const BlockId head = a.allocate(10 * MiB);
  const BlockId tail = a.allocate(4 * MiB);
  a.free(tail);
  const BlockId big = a.allocate(6 * MiB);
  EXPECT_EQ(a.stats().reserved_bytes, 16 * MiB);
  a.free(big);
  a.free(head);
}

class AllocatorInvariants : public ::testing::TestWithParam<bool> {};

TEST_P(AllocatorInvariants, RandomTraceConservation) {
  const bool expandable = GetParam();
  CachingAllocator a({.capacity_bytes = i64{4} << 30, .expandable_segments = expandable});
  std::mt19937 rng(42);
  std::uniform_int_distribution<i64> size(1, 64 * MiB);
  std::vector<std::pair<BlockId, i64>> live;
  i64 expected_allocated = 0;
  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || (rng() % 100 < 55);
    if (do_alloc) {
      const i64 req = size(rng);
      const i64 rounded = (req + 511) / 512 * 512;
      try {
        live.emplace_back(a.allocate(req), rounded);
        expected_allocated += rounded;
      } catch (const OutOfMemory&) {
        // Acceptable under fragmentation; invariants must still hold.
      }
    } else {
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t i = pick(rng);
      a.free(live[i].first);
      expected_allocated -= live[i].second;
      live[i] = live.back();
      live.pop_back();
    }
    const auto& st = a.stats();
    ASSERT_EQ(st.allocated_bytes, expected_allocated);
    ASSERT_GE(st.reserved_bytes, st.allocated_bytes);
    ASSERT_LE(st.reserved_bytes, a.config().capacity_bytes);
    ASSERT_LE(st.largest_free_block, st.reserved_bytes - st.allocated_bytes);
    ASSERT_GE(st.fragmentation(), 0.0);
    ASSERT_LE(st.fragmentation(), 1.0);
  }
  for (auto& [id, sz] : live) a.free(id);
  EXPECT_EQ(a.stats().allocated_bytes, 0);
  a.empty_cache();
  EXPECT_EQ(a.stats().reserved_bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(Modes, AllocatorInvariants, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "expandable" : "classic";
                         });

TEST(MlpWorkload, ChunkingAndPoolingReduceReservedOverhead) {
  MlpWorkloadParams p;
  p.s_local = 2048;
  p.h = 1024;
  p.layers = 2;
  p.micro_batches = 8;
  const AllocatorConfig cfg{.capacity_bytes = i64{64} << 30};

  p.chunks = 1;
  p.use_buffer_pool = false;
  const auto naive = run_filo_mlp_workload(cfg, p);
  ASSERT_FALSE(naive.oom);

  p.chunks = 8;
  p.use_buffer_pool = true;
  const auto chunked = run_filo_mlp_workload(cfg, p);
  ASSERT_FALSE(chunked.oom);

  // Chunked MLP with pre-allocated comm buffers needs far less memory at
  // peak, both live (smaller transients) and reserved (Section 4.4.2).
  EXPECT_LT(chunked.stats.peak_allocated, naive.stats.peak_allocated);
  EXPECT_LT(chunked.stats.peak_reserved, naive.stats.peak_reserved);
  // The unchunked trace strands reserved capacity above its live peak.
  EXPECT_GT(naive.reserved_overhead(), 1.02);
}

TEST(MlpWorkload, ExpandableSegmentsMitigateFragmentation) {
  MlpWorkloadParams p;
  p.s_local = 2048;
  p.h = 1024;
  p.layers = 2;
  p.micro_batches = 8;
  p.chunks = 1;
  const auto classic = run_filo_mlp_workload({.capacity_bytes = i64{64} << 30}, p);
  const auto expandable = run_filo_mlp_workload(
      {.capacity_bytes = i64{64} << 30, .expandable_segments = true}, p);
  ASSERT_FALSE(classic.oom);
  ASSERT_FALSE(expandable.oom);
  EXPECT_LE(expandable.stats.peak_reserved, classic.stats.peak_reserved);
}

/// Records every event; used to prove the stream is a faithful transcript.
class RecordingSink final : public AllocatorEventSink {
 public:
  std::vector<AllocatorEvent> events;
  void on_event(const AllocatorEvent& ev) override { events.push_back(ev); }
};

class AllocatorEvents : public ::testing::TestWithParam<bool> {};

TEST_P(AllocatorEvents, StreamMatchesStatsDeltasUnderWorkloadReplay) {
  // Replay the FILO MLP workload with a recording sink attached and verify
  // the documented delta contract: replaying the event kinds' deltas from
  // zero reproduces every post-event stats snapshot exactly.
  MlpWorkloadParams p;
  p.s_local = 2048;
  p.h = 1024;
  p.layers = 2;
  p.micro_batches = 4;
  RecordingSink sink;
  const AllocatorConfig cfg{.capacity_bytes = i64{64} << 30,
                            .expandable_segments = GetParam()};
  const auto report = run_filo_mlp_workload(cfg, p, &sink);
  ASSERT_FALSE(report.oom);
  ASSERT_FALSE(sink.events.empty());

  i64 allocated = 0, reserved = 0, peak_allocated = 0, peak_reserved = 0;
  bool saw_alloc = false, saw_free = false, saw_segment = false;
  for (const AllocatorEvent& ev : sink.events) {
    switch (ev.kind) {
      case AllocatorEventKind::kAlloc:
        ASSERT_GT(ev.block, 0);
        ASSERT_GT(ev.requested_bytes, 0);
        ASSERT_GE(ev.rounded_bytes, ev.requested_bytes);
        ASSERT_EQ(ev.rounded_bytes % cfg.round_bytes, 0);
        allocated += ev.rounded_bytes;
        saw_alloc = true;
        break;
      case AllocatorEventKind::kFree:
        ASSERT_GT(ev.block, 0);
        allocated -= ev.rounded_bytes;
        saw_free = true;
        break;
      case AllocatorEventKind::kSegmentNew:
      case AllocatorEventKind::kSegmentGrow:
        reserved += ev.rounded_bytes;
        saw_segment = true;
        break;
      case AllocatorEventKind::kSegmentRelease:
        reserved -= ev.rounded_bytes;
        break;
      case AllocatorEventKind::kEmptyCache:
        break;  // summary event, no delta
    }
    peak_allocated = std::max(peak_allocated, allocated);
    peak_reserved = std::max(peak_reserved, reserved);
    ASSERT_EQ(ev.stats.allocated_bytes, allocated)
        << "at event " << to_string(ev.kind);
    ASSERT_EQ(ev.stats.reserved_bytes, reserved);
    ASSERT_EQ(ev.stats.peak_allocated, peak_allocated);
    ASSERT_EQ(ev.stats.peak_reserved, peak_reserved);
  }
  EXPECT_TRUE(saw_alloc);
  EXPECT_TRUE(saw_free);
  EXPECT_TRUE(saw_segment);
  // The replay's running totals end where the workload's final stats ended.
  EXPECT_EQ(report.stats.allocated_bytes, allocated);
  EXPECT_EQ(report.stats.reserved_bytes, reserved);
  EXPECT_EQ(report.stats.peak_allocated, peak_allocated);
  EXPECT_EQ(report.stats.peak_reserved, peak_reserved);
}

INSTANTIATE_TEST_SUITE_P(Modes, AllocatorEvents, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "expandable" : "classic";
                         });

TEST(AllocatorEvents, DetachedAllocatorEmitsNothingAndSinkDetaches) {
  CachingAllocator a({.capacity_bytes = 100 * MiB});
  EXPECT_EQ(a.event_sink(), nullptr);
  RecordingSink sink;
  a.set_event_sink(&sink);
  const BlockId b = a.allocate(MiB);
  ASSERT_EQ(sink.events.size(), 2u);  // segment new + alloc
  EXPECT_EQ(sink.events[0].kind, AllocatorEventKind::kSegmentNew);
  EXPECT_EQ(sink.events[1].kind, AllocatorEventKind::kAlloc);
  a.set_event_sink(nullptr);
  a.free(b);
  a.empty_cache();
  EXPECT_EQ(sink.events.size(), 2u) << "no events after detach";
}

TEST(AllocatorEvents, EmptyCacheEmitsReleaseThenSummary) {
  CachingAllocator a({.capacity_bytes = 200 * MiB});
  const BlockId b = a.allocate(40 * MiB);
  a.free(b);
  RecordingSink sink;
  a.set_event_sink(&sink);
  a.empty_cache();
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].kind, AllocatorEventKind::kSegmentRelease);
  EXPECT_EQ(sink.events[0].rounded_bytes, 40 * MiB);
  EXPECT_EQ(sink.events[1].kind, AllocatorEventKind::kEmptyCache);
  EXPECT_EQ(sink.events[1].stats.reserved_bytes, 0);
}

TEST(MlpWorkload, FragmentationCausesOomThatChunkingAvoids) {
  // A capacity tight enough that stranding kills the unchunked run while
  // the chunked + pooled variant survives (the Section 4.4.1 observation
  // that recompute-without-attention "cannot be directly applied").
  MlpWorkloadParams p;
  p.s_local = 4096;
  p.h = 2048;
  p.layers = 4;
  p.micro_batches = 16;
  p.chunks = 1;
  p.use_buffer_pool = false;

  // Find the chunked peak first, then squeeze capacity 15% above it.
  MlpWorkloadParams cp = p;
  cp.chunks = 8;
  cp.use_buffer_pool = true;
  const auto chunked_probe =
      run_filo_mlp_workload({.capacity_bytes = i64{512} << 30}, cp);
  ASSERT_FALSE(chunked_probe.oom);
  const i64 cap = chunked_probe.stats.peak_reserved * 115 / 100;

  const auto naive = run_filo_mlp_workload({.capacity_bytes = cap}, p);
  const auto chunked = run_filo_mlp_workload({.capacity_bytes = cap}, cp);
  EXPECT_FALSE(chunked.oom);
  EXPECT_TRUE(naive.oom) << "unchunked run should strand memory and die";
}

}  // namespace
}  // namespace helix::mem
