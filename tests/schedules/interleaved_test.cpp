// Interleaved 1F1B: validity, the v-fold bubble reduction with enough micro
// batches, its degradation with few micro batches, and the v-fold increase
// in communication volume — the paper's Section 6.2 argument.
#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/validator.h"
#include "schedules/interleaved.h"
#include "core/filo.h"
#include "schedules/layerwise.h"
#include "sim/simulator.h"

namespace helix::schedules {
namespace {

core::PipelineProblem problem(int p, int m, int L) {
  core::PipelineProblem pr;
  pr.p = p;
  pr.m = m;
  pr.L = L;
  pr.comm.boundary = 1;
  pr.comm.pre_to_attn = 1;
  pr.comm.attn_to_post = 1;
  pr.include_lm_head = false;
  pr.act.pre = 2;
  pr.act.attn = 3;
  pr.act.post = 11;
  return pr;
}

const core::UnitCostModel kUnit{};

class Interleaved : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Interleaved, StructureAndSemantics) {
  const auto [p, v, mmul] = GetParam();
  const auto pr = problem(p, mmul * p, 2 * p * v);
  const auto sched = build_interleaved_1f1b(pr, {.virtual_chunks = v});
  const auto structural = core::validate_structure(sched);
  for (const auto& e : structural.errors) ADD_FAILURE() << e;
  const auto semantic = core::validate_semantics(sched);
  for (const auto& e : semantic.errors) ADD_FAILURE() << e;
}

TEST_P(Interleaved, DegeneratesToClassicAtV1) {
  const auto [p, v, mmul] = GetParam();
  if (v != 1) GTEST_SKIP();
  const auto pr = problem(p, mmul * p, 2 * p);
  const auto inter = sim::Simulator(kUnit).run(build_interleaved_1f1b(pr, {.virtual_chunks = 1}));
  const auto classic = sim::Simulator(kUnit).run(build_1f1b(pr));
  EXPECT_DOUBLE_EQ(inter.makespan, classic.makespan);
}

TEST_P(Interleaved, BubbleShrinksByV) {
  const auto [p, v, mmul] = GetParam();
  if (mmul < 4) GTEST_SKIP();  // the theoretical bubble needs many micro batches
  const int L = 2 * p * v;
  const auto pr = problem(p, mmul * p, L);
  const auto res = sim::Simulator(kUnit).run(
      build_interleaved_1f1b(pr, {.virtual_chunks = v}));
  const double work = pr.m * (L / p) * 18.0;
  const double classic_bubble = 3.0 * (p - 1) * 6.0 * L / p;
  EXPECT_NEAR(res.makespan, work + classic_bubble / v, classic_bubble * 0.15 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Interleaved,
                         ::testing::Combine(::testing::Values(2, 4),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(1, 2, 4)));

TEST(Interleaved, HelixBeatsInterleavedWhenAttentionDominates) {
  // Section 6.2's core argument: interleaving only divides the layer-
  // proportional bubble by v, while HelixPipe removes the (dominant)
  // attention from it entirely. At the evaluation setting m = 2p with the
  // 1:3:2 part ratio, HelixPipe's bubble is already smaller than
  // interleaved-v2's — and the gap widens as attention grows.
  const int p = 4, L = 16;
  const auto pr = problem(p, 2 * p, L);
  const double work = pr.m * (L / p) * 18.0;
  const auto inter = sim::Simulator(kUnit).run(
      build_interleaved_1f1b(pr, {.virtual_chunks = 2}));
  const auto helix = sim::Simulator(kUnit).run(core::build_helix_schedule(
      pr, {.two_fold = true, .recompute_without_attention = false}));
  const double inter_bubble = inter.makespan - work;
  const double helix_bubble = helix.makespan - work;
  // Interleaved: 3(p-1)*6*L/p / v = 108; Helix two-fold: 6(p-1)*3 = 54.
  EXPECT_NEAR(inter_bubble, 108.0, 16.0);
  EXPECT_NEAR(helix_bubble, 54.0, 1e-9);
  EXPECT_LT(helix_bubble, inter_bubble);
}

TEST(Interleaved, VTimesTheCommunication) {
  const int p = 4, L = 16, m = 8;
  const auto pr = problem(p, m, L);
  const auto count_sends = [](const core::Schedule& s) {
    std::size_t n = 0;
    for (const auto& stage : s.stage_ops) {
      for (const auto& op : stage) n += op.kind == core::OpKind::kSend;
    }
    return n;
  };
  const auto v1 = count_sends(build_interleaved_1f1b(pr, {.virtual_chunks = 1}));
  const auto v2 = count_sends(build_interleaved_1f1b(pr, {.virtual_chunks = 2}));
  // (p*v - 1) boundaries per direction per micro batch.
  EXPECT_EQ(v1, static_cast<std::size_t>(2 * m * (p - 1)));
  EXPECT_EQ(v2, static_cast<std::size_t>(2 * m * (2 * p - 1)));
}

TEST(Interleaved, RejectsBadShapes) {
  EXPECT_THROW(build_interleaved_1f1b(problem(4, 8, 12), {.virtual_chunks = 2}),
               std::invalid_argument);  // L % (p*v) != 0
  EXPECT_THROW(build_interleaved_1f1b(problem(4, 6, 16), {.virtual_chunks = 2}),
               std::invalid_argument);  // m % p != 0
  EXPECT_THROW(build_interleaved_1f1b(problem(4, 8, 16), {.virtual_chunks = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace helix::schedules
