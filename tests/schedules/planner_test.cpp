// Planner-level properties: ZB1P macro-step plans, AdaPipe's adaptive
// partition / recomputation DP, and macro-step cost pricing.
#include <gtest/gtest.h>

#include <numeric>

#include "core/cost.h"
#include "schedules/adapipe.h"
#include "schedules/step_cost.h"
#include "schedules/zb1p.h"

namespace helix::schedules {
namespace {

core::PipelineProblem problem(int p, int m, int L) {
  core::PipelineProblem pr;
  pr.p = p;
  pr.m = m;
  pr.L = L;
  pr.comm.boundary = 1;
  pr.act.pre = 2;
  pr.act.attn = 3;
  pr.act.post = 11;
  pr.act.full_layer_recompute_stash = 1;
  return pr;
}

const core::UnitCostModel kUnit{};

TEST(Zb1pPlan, StepCountsAndOrdering) {
  const auto pr = problem(4, 8, 8);
  const LayerwisePlan plan = plan_zb1p(pr, kUnit);
  ASSERT_EQ(plan.steps.size(), 4u);
  EXPECT_TRUE(plan.decouple_w);
  for (int i = 0; i < 4; ++i) {
    const auto& steps = plan.steps[static_cast<std::size_t>(i)];
    int f = 0, b = 0, w = 0;
    int next_f = 0, next_b = 0, next_w = 0;
    for (const MacroStep& st : steps) {
      switch (st.kind) {
        case StepKind::kForward:
          EXPECT_EQ(st.mb, next_f++) << "forwards in micro batch order";
          ++f;
          break;
        case StepKind::kBackward:
          EXPECT_EQ(st.mb, next_b++);
          EXPECT_LT(next_b, next_f + 1) << "backward after its own forward";
          ++b;
          break;
        case StepKind::kBackwardW:
          EXPECT_EQ(st.mb, next_w++);
          EXPECT_LE(next_w, next_b) << "W after its backward-B";
          ++w;
          break;
      }
    }
    EXPECT_EQ(f, pr.m);
    EXPECT_EQ(b, pr.m);
    EXPECT_EQ(w, pr.m);
  }
}

TEST(Zb1pPlan, RespectsMemoryCap) {
  const auto pr = problem(4, 12, 8);
  for (const int cap : {2, 4}) {
    const LayerwisePlan plan = plan_zb1p(pr, kUnit, {.max_outstanding = cap});
    for (const auto& steps : plan.steps) {
      int live = 0, peak = 0;
      for (const MacroStep& st : steps) {
        if (st.kind == StepKind::kForward) peak = std::max(peak, ++live);
        if (st.kind == StepKind::kBackwardW) --live;
      }
      EXPECT_LE(peak, cap);
    }
  }
}

TEST(AdaPipe, UnconstrainedChoosesNoRecompute) {
  const auto pr = problem(4, 8, 8);
  const auto res = plan_adapipe(pr, kUnit, {});
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(std::accumulate(res.plan.layers_per_stage.begin(),
                            res.plan.layers_per_stage.end(), 0),
            pr.L);
  for (const int r : res.plan.recompute_layers) EXPECT_EQ(r, 0);
}

TEST(AdaPipe, TightMemoryForcesRecomputeOnEarlyStages) {
  auto pr = problem(4, 8, 8);
  // 1F1B outstanding: stage 0 holds 4 micro batches. Full stash is 16/layer;
  // cap below 4 mb x 2 layers x 16 forces recomputation where outstanding is
  // high.
  AdaPipeOptions opt;
  opt.mem_cap_bytes.assign(4, 4 * 2 * 16 - 1);
  const auto res = plan_adapipe(pr, kUnit, opt);
  ASSERT_TRUE(res.feasible);
  EXPECT_GT(res.plan.recompute_layers[0], 0) << "stage 0 must recompute";
  EXPECT_EQ(res.plan.recompute_layers[3], 0)
      << "last stage (1 outstanding) has memory to spare";
}

TEST(AdaPipe, InfeasibleCapReportsAndFallsBack) {
  auto pr = problem(4, 8, 8);
  AdaPipeOptions opt;
  opt.mem_cap_bytes.assign(4, 1);  // nothing fits
  const auto res = plan_adapipe(pr, kUnit, opt);
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(std::accumulate(res.plan.layers_per_stage.begin(),
                            res.plan.layers_per_stage.end(), 0),
            pr.L);
}

TEST(AdaPipe, BalancesUnevenEndStages) {
  // A heavy LM head on the last stage should shift layers away from it.
  auto pr = problem(4, 8, 8);
  core::UnitCostModel::Units u;
  u.lm_head = 12.0;  // two layers' worth of forward work
  const core::UnitCostModel heavy_head{u};
  const auto res = plan_adapipe(pr, heavy_head, {});
  ASSERT_TRUE(res.feasible);
  EXPECT_LT(res.plan.layers_per_stage.back(), 3);
  EXPECT_EQ(std::accumulate(res.plan.layers_per_stage.begin(),
                            res.plan.layers_per_stage.end(), 0),
            pr.L);
}

TEST(StepCost, PricesMacroSteps) {
  const auto pr = problem(2, 2, 4);
  const StepCostQuery q{.stage = 0, .num_layers = 2, .recompute_layers = 0,
                        .decouple_w = false, .first_stage = true,
                        .last_stage = false};
  // Forward: 2 layers x (1 + 3 + 2) = 12 units.
  EXPECT_DOUBLE_EQ(macro_step_seconds(pr, kUnit, StepKind::kForward, q), 12.0);
  // Combined backward: 2 x (2 + 6 + 4) = 24.
  EXPECT_DOUBLE_EQ(macro_step_seconds(pr, kUnit, StepKind::kBackward, q), 24.0);
  StepCostQuery dq = q;
  dq.decouple_w = true;
  // Decoupled: B = 2 x (1 + 6 + 2) = 18, W = 2 x (1 + 2) = 6.
  EXPECT_DOUBLE_EQ(macro_step_seconds(pr, kUnit, StepKind::kBackward, dq), 18.0);
  EXPECT_DOUBLE_EQ(macro_step_seconds(pr, kUnit, StepKind::kBackwardW, dq), 6.0);
  StepCostQuery rq = q;
  rq.recompute_layers = 1;
  // Full-layer recompute adds one forward of that layer (6 units).
  EXPECT_DOUBLE_EQ(macro_step_seconds(pr, kUnit, StepKind::kBackward, rq), 30.0);
}

}  // namespace
}  // namespace helix::schedules
