// Finite-difference verification of every numerical primitive's backward.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.h"

namespace helix::tensor {
namespace {

/// Central-difference derivative of scalar(f) w.r.t. t[i].
double fd(Tensor& t, i64 i, const std::function<double()>& f, double eps = 1e-3) {
  const float saved = t[i];
  t[i] = static_cast<float>(saved + eps);
  const double hi = f();
  t[i] = static_cast<float>(saved - eps);
  const double lo = f();
  t[i] = saved;
  return (hi - lo) / (2 * eps);
}

/// Scalar projection: sum(w .* y) with fixed pseudo-random weights makes
/// every output element contribute to the scalar.
Tensor weights_like(const Tensor& y, std::uint64_t seed) {
  Tensor w(y.shape());
  fill_uniform(w, seed, -1.0f, 1.0f);
  return w;
}
double dot(const Tensor& a, const Tensor& b) {
  double s = 0;
  for (i64 i = 0; i < a.numel(); ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

TEST(OpsGrad, Matmul) {
  Tensor a({5, 4}), b({4, 3});
  fill_uniform(a, 1);
  fill_uniform(b, 2);
  const Tensor w = weights_like(matmul(a, b), 3);
  const auto f = [&] { return dot(matmul(a, b), w); };
  const Tensor da = matmul_nt(w, b);   // dL/dA = W B^T
  const Tensor db = matmul_tn(a, w);   // dL/dB = A^T W
  for (i64 i = 0; i < a.numel(); i += 3) EXPECT_NEAR(da[i], fd(a, i, f), 2e-3);
  for (i64 i = 0; i < b.numel(); i += 2) EXPECT_NEAR(db[i], fd(b, i, f), 2e-3);
}

TEST(OpsGrad, LayerNorm) {
  Tensor x({6, 8}), gamma({8}), beta({8});
  fill_uniform(x, 4, -2.0f, 2.0f);
  fill_uniform(gamma, 5, 0.5f, 1.5f);
  fill_uniform(beta, 6, -0.5f, 0.5f);
  LayerNormStats stats;
  const Tensor w = weights_like(layernorm_forward(x, gamma, beta, &stats), 7);
  const auto f = [&] {
    LayerNormStats st;
    return dot(layernorm_forward(x, gamma, beta, &st), w);
  };
  const LayerNormGrads g = layernorm_backward(w, x, gamma, stats);
  for (i64 i = 0; i < x.numel(); i += 5) EXPECT_NEAR(g.dx[i], fd(x, i, f), 5e-3);
  for (i64 i = 0; i < 8; ++i) {
    EXPECT_NEAR(g.dgamma[i], fd(gamma, i, f), 5e-3);
    EXPECT_NEAR(g.dbeta[i], fd(beta, i, f), 5e-3);
  }
  // The serial reference backward must satisfy the same finite differences
  // AND agree with the pooled kernel to the bit.
  const LayerNormGrads gr = ref::layernorm_backward(w, x, gamma, stats);
  EXPECT_EQ(max_abs_diff(g.dx, gr.dx), 0.0);
  EXPECT_EQ(max_abs_diff(g.dgamma, gr.dgamma), 0.0);
  EXPECT_EQ(max_abs_diff(g.dbeta, gr.dbeta), 0.0);
  for (i64 i = 0; i < 8; ++i) {
    EXPECT_NEAR(gr.dgamma[i], fd(gamma, i, f), 5e-3);
    EXPECT_NEAR(gr.dbeta[i], fd(beta, i, f), 5e-3);
  }
}

TEST(OpsGrad, Gelu) {
  Tensor x({4, 6});
  fill_uniform(x, 8, -3.0f, 3.0f);
  const Tensor w = weights_like(x, 9);
  const auto f = [&] { return dot(gelu_forward(x), w); };
  const Tensor dx = gelu_backward(w, x);
  for (i64 i = 0; i < x.numel(); ++i) EXPECT_NEAR(dx[i], fd(x, i, f), 2e-3);
}

class AttentionGrad : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AttentionGrad, MatchesFiniteDifference) {
  const auto [batch, seq, heads] = GetParam();
  const i64 h = 8;
  Tensor qkv({batch * seq, 3 * h});
  fill_uniform(qkv, 10, -1.0f, 1.0f);
  const Tensor w = weights_like(attention_forward(qkv, batch, seq, heads), 11);
  const auto f = [&] { return dot(attention_forward(qkv, batch, seq, heads), w); };
  const Tensor dqkv = attention_backward(w, qkv, batch, seq, heads);
  for (i64 i = 0; i < qkv.numel(); i += 7) {
    EXPECT_NEAR(dqkv[i], fd(qkv, i, f), 5e-3) << "elem " << i;
  }
  // The serial reference must satisfy the same finite differences and match
  // the pooled kernel to the bit.
  const Tensor dqkv_ref = ref::attention_backward(w, qkv, batch, seq, heads);
  EXPECT_EQ(max_abs_diff(dqkv, dqkv_ref), 0.0);
  const Tensor fwd_ref = ref::attention_forward(qkv, batch, seq, heads);
  EXPECT_EQ(max_abs_diff(attention_forward(qkv, batch, seq, heads), fwd_ref), 0.0);
  for (i64 i = 0; i < qkv.numel(); i += 11) {
    EXPECT_NEAR(dqkv_ref[i], fd(qkv, i, f), 5e-3) << "ref elem " << i;
  }
}

// heads > 1 with seq != batch*... and odd sequence lengths, so head/chunk
// boundaries and causal tails are all exercised.
INSTANTIATE_TEST_SUITE_P(Shapes, AttentionGrad,
                         ::testing::Values(std::make_tuple(1, 4, 1),
                                           std::make_tuple(1, 6, 2),
                                           std::make_tuple(2, 5, 4),
                                           std::make_tuple(3, 7, 2),
                                           std::make_tuple(2, 9, 4)));

TEST(OpsGrad, AttentionIsCausal) {
  const i64 seq = 6, h = 8;
  Tensor qkv({seq, 3 * h});
  fill_uniform(qkv, 12);
  const Tensor base = attention_forward(qkv, 1, seq, 2);
  // Perturb the last position's K/V: earlier outputs must not change.
  for (i64 c = h; c < 3 * h; ++c) qkv.at(seq - 1, c) += 1.0f;
  const Tensor out = attention_forward(qkv, 1, seq, 2);
  for (i64 i = 0; i < seq - 1; ++i) {
    for (i64 c = 0; c < h; ++c) {
      EXPECT_FLOAT_EQ(out.at(i, c), base.at(i, c)) << "pos " << i;
    }
  }
}

TEST(OpsGrad, CrossEntropy) {
  Tensor logits({5, 7});
  fill_uniform(logits, 13, -2.0f, 2.0f);
  const std::vector<int> targets{0, 3, 6, 2, 1};
  Tensor dlogits;
  (void)cross_entropy_forward_backward(logits, targets, dlogits);
  const auto f = [&] {
    Tensor d;
    return cross_entropy_forward_backward(logits, targets, d);
  };
  for (i64 i = 0; i < logits.numel(); ++i) {
    EXPECT_NEAR(dlogits[i], fd(logits, i, f), 2e-3);
  }
}

TEST(OpsGrad, EmbeddingRoundTrip) {
  const i64 vocab = 10, h = 4, seq = 3, batch = 2;
  Tensor wte({vocab, h}), wpe({seq, h});
  fill_uniform(wte, 14);
  fill_uniform(wpe, 15);
  const std::vector<int> tokens{1, 5, 9, 0, 5, 2};
  const Tensor x = embedding_forward(tokens, wte, wpe, batch, seq);
  EXPECT_FLOAT_EQ(x.at(0, 0), wte.at(1, 0) + wpe.at(0, 0));
  EXPECT_FLOAT_EQ(x.at(4, 2), wte.at(5, 2) + wpe.at(1, 2));
  Tensor dwte({vocab, h}), dwpe({seq, h});
  Tensor dx({batch * seq, h});
  fill_uniform(dx, 16);
  embedding_backward(dx, tokens, dwte, dwpe, batch, seq);
  // Token 5 appears at rows 1 and 4: its gradient is their sum.
  EXPECT_FLOAT_EQ(dwte.at(5, 0), dx.at(1, 0) + dx.at(4, 0));
  EXPECT_FLOAT_EQ(dwpe.at(0, 0), dx.at(0, 0) + dx.at(3, 0));
}

TEST(Ops, ShapeChecks) {
  Tensor a({2, 3}), b({4, 5});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(Tensor({0, 2}), std::invalid_argument);
}

}  // namespace
}  // namespace helix::tensor
