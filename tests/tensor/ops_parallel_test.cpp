#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "par/thread_pool.h"

// The determinism contract: every pooled kernel is BIT-identical to the
// serial reference (tensor::ref) for every thread count. These tests compare
// raw float bytes — no tolerances — at pool sizes {1, 2, 4}.
namespace helix::tensor {
namespace {

void expect_bits_equal(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_TRUE(got.same_shape(want)) << what;
  ASSERT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(want.numel()) * sizeof(float)),
            0)
      << what << ": pooled kernel diverged bitwise from the serial reference";
}

class OpsParallelTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { par::set_global_threads(GetParam()); }
  void TearDown() override { par::set_global_threads(1); }
};

TEST_P(OpsParallelTest, MatmulVariantsMatchReferenceBitwise) {
  // Deliberately non-square, non-power-of-two shapes so chunk tails exist.
  Tensor a({37, 21}), b({21, 29}), at({21, 37}), bt({29, 21});
  fill_uniform(a, 1);
  fill_uniform(b, 2);
  fill_uniform(at, 3);
  fill_uniform(bt, 4);
  expect_bits_equal(matmul(a, b), ref::matmul(a, b), "matmul");
  expect_bits_equal(matmul_tn(at, b), ref::matmul_tn(at, b), "matmul_tn");
  expect_bits_equal(matmul_nt(a, bt), ref::matmul_nt(a, bt), "matmul_nt");
}

TEST_P(OpsParallelTest, LayerNormForwardMatchesReferenceBitwise) {
  Tensor x({53, 48}), gamma({48}), beta({48});
  fill_uniform(x, 5);
  fill_uniform(gamma, 6, 0.5f, 1.5f);
  fill_uniform(beta, 7, -0.1f, 0.1f);
  LayerNormStats st_pool, st_ref;
  expect_bits_equal(layernorm_forward(x, gamma, beta, &st_pool),
                    ref::layernorm_forward(x, gamma, beta, &st_ref), "ln fwd");
  expect_bits_equal(st_pool.mean, st_ref.mean, "ln mean");
  expect_bits_equal(st_pool.rstd, st_ref.rstd, "ln rstd");
}

TEST_P(OpsParallelTest, LayerNormBackwardMatchesReferenceBitwise) {
  Tensor x({53, 48}), gamma({48}), beta({48}), dy({53, 48});
  fill_uniform(x, 8);
  fill_uniform(gamma, 9, 0.5f, 1.5f);
  fill_uniform(beta, 10, -0.1f, 0.1f);
  fill_uniform(dy, 11);
  LayerNormStats st;
  ref::layernorm_forward(x, gamma, beta, &st);
  const LayerNormGrads got = layernorm_backward(dy, x, gamma, st);
  const LayerNormGrads want = ref::layernorm_backward(dy, x, gamma, st);
  expect_bits_equal(got.dx, want.dx, "ln dx");
  expect_bits_equal(got.dgamma, want.dgamma, "ln dgamma");
  expect_bits_equal(got.dbeta, want.dbeta, "ln dbeta");

  const LayerNormParamGrads gp = layernorm_param_grads(dy, x, st);
  const LayerNormParamGrads wp = ref::layernorm_param_grads(dy, x, st);
  expect_bits_equal(gp.dgamma, wp.dgamma, "ln param dgamma");
  expect_bits_equal(gp.dbeta, wp.dbeta, "ln param dbeta");
}

TEST_P(OpsParallelTest, GeluMatchesReferenceBitwise) {
  Tensor x({71, 33}), dy({71, 33});
  fill_uniform(x, 12, -3.0f, 3.0f);
  fill_uniform(dy, 13);
  expect_bits_equal(gelu_forward(x), ref::gelu_forward(x), "gelu fwd");
  expect_bits_equal(gelu_backward(dy, x), ref::gelu_backward(dy, x), "gelu bwd");
}

TEST_P(OpsParallelTest, AttentionMatchesReferenceBitwise) {
  // heads > 1 and non-square (batch, seq) combinations, including odd seq.
  struct Shape {
    i64 batch, seq;
    int heads;
  };
  for (const Shape& sh : {Shape{1, 9, 2}, Shape{2, 7, 4}, Shape{3, 5, 2}}) {
    const i64 h = 8 * sh.heads;
    Tensor qkv({sh.batch * sh.seq, 3 * h});
    Tensor dctx({sh.batch * sh.seq, h});
    fill_uniform(qkv, 14 + static_cast<std::uint64_t>(sh.batch));
    fill_uniform(dctx, 20 + static_cast<std::uint64_t>(sh.seq));
    expect_bits_equal(attention_forward(qkv, sh.batch, sh.seq, sh.heads),
                      ref::attention_forward(qkv, sh.batch, sh.seq, sh.heads),
                      "attention fwd");
    expect_bits_equal(attention_backward(dctx, qkv, sh.batch, sh.seq, sh.heads),
                      ref::attention_backward(dctx, qkv, sh.batch, sh.seq, sh.heads),
                      "attention bwd");
  }
}

TEST_P(OpsParallelTest, CrossEntropyMatchesReferenceExactly) {
  Tensor logits({26, 50});
  fill_uniform(logits, 30);
  std::vector<int> targets;
  for (i64 r = 0; r < logits.rows(); ++r) {
    targets.push_back(static_cast<int>((r * 7) % logits.cols()));
  }
  Tensor dl_pool, dl_ref;
  const double loss_pool = cross_entropy_forward_backward(logits, targets, dl_pool);
  const double loss_ref = ref::cross_entropy_forward_backward(logits, targets, dl_ref);
  EXPECT_EQ(loss_pool, loss_ref);  // identical serial left-fold, exact
  expect_bits_equal(dl_pool, dl_ref, "cross-entropy dlogits");
}

TEST_P(OpsParallelTest, ElementwiseOpsMatchReferenceBitwise) {
  // Large enough to split into several kElemGrain chunks.
  Tensor a({100, 200}), b({100, 200});
  fill_uniform(a, 40);
  fill_uniform(b, 41);

  Tensor serial_add = a;
  for (i64 i = 0; i < serial_add.numel(); ++i) serial_add[i] += b[i];
  expect_bits_equal(add(a, b), serial_add, "add");

  Tensor a2 = a;
  add_inplace(a2, b);
  expect_bits_equal(a2, serial_add, "add_inplace");

  Tensor serial_axpy = a;
  for (i64 i = 0; i < serial_axpy.numel(); ++i) serial_axpy[i] += 0.25f * b[i];
  Tensor a3 = a;
  axpy(a3, b, 0.25f);
  expect_bits_equal(a3, serial_axpy, "axpy");

  Tensor serial_scale = a;
  for (i64 i = 0; i < serial_scale.numel(); ++i) serial_scale[i] *= 1.75f;
  expect_bits_equal(scale(a, 1.75f), serial_scale, "scale");
}

TEST_P(OpsParallelTest, EmbeddingMatchesSerialBitwise) {
  const i64 batch = 3, seq = 17, h = 40, vocab = 64;
  Tensor wte({vocab, h}), wpe({seq, h});
  fill_uniform(wte, 50);
  fill_uniform(wpe, 51);
  std::vector<int> tokens;
  for (i64 r = 0; r < batch * seq; ++r) {
    tokens.push_back(static_cast<int>((r * 13 + 5) % vocab));  // repeats tokens
  }
  // Serial oracle computed inline (embedding has no ref:: twin: forward is a
  // pure gather and backward's only hazard is the scatter-add resolved by
  // column-parallelism).
  Tensor want_x({batch * seq, h});
  for (i64 r = 0; r < batch * seq; ++r) {
    const i64 s = r % seq;
    for (i64 c = 0; c < h; ++c) {
      want_x.at(r, c) = wte.at(tokens[static_cast<std::size_t>(r)], c) + wpe.at(s, c);
    }
  }
  expect_bits_equal(embedding_forward(tokens, wte, wpe, batch, seq), want_x,
                    "embedding fwd");

  Tensor dx({batch * seq, h});
  fill_uniform(dx, 52);
  Tensor dwte({vocab, h}), dwpe({seq, h});
  Tensor want_dwte({vocab, h}), want_dwpe({seq, h});
  for (i64 b = 0; b < batch; ++b) {
    for (i64 s = 0; s < seq; ++s) {
      const i64 r = b * seq + s;
      const int tok = tokens[static_cast<std::size_t>(r)];
      for (i64 c = 0; c < h; ++c) {
        want_dwte.at(tok, c) += dx.at(r, c);
        want_dwpe.at(s, c) += dx.at(r, c);
      }
    }
  }
  embedding_backward(dx, tokens, dwte, dwpe, batch, seq);
  expect_bits_equal(dwte, want_dwte, "embedding dwte");
  expect_bits_equal(dwpe, want_dwpe, "embedding dwpe");
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, OpsParallelTest, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace helix::tensor
