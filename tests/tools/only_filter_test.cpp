// perf_compare --only PREFIX must select whole benchmark sections, not raw
// string prefixes: "--only sim" previously also gated "sim_legacy/..."
// because the match was a plain starts-with. The filter now anchors at the
// key's section separators ('/' and '.').
#include <gtest/gtest.h>

#include "tools/only_filter.h"

using helix::tools::only_prefix_matches;
using helix::tools::only_selects;

TEST(OnlyFilter, SectionPrefixDoesNotLeakIntoSiblingSections) {
  // The regression: --only sim must keep sim/ keys and nothing from
  // sim_legacy/.
  EXPECT_TRUE(only_prefix_matches("sim/run_all_families", "sim"));
  EXPECT_TRUE(only_prefix_matches("sim/compiled/one", "sim"));
  EXPECT_FALSE(only_prefix_matches("sim_legacy/run_all_families", "sim"));
  EXPECT_FALSE(only_prefix_matches("simulator/x", "sim"));
}

TEST(OnlyFilter, TrailingSeparatorInThePrefixStillAnchors) {
  EXPECT_TRUE(only_prefix_matches("sim/run", "sim/"));
  EXPECT_FALSE(only_prefix_matches("sim_legacy/run", "sim/"));
  // A separator-terminated prefix matches mid-segment continuations too —
  // the user asked for that subtree explicitly.
  EXPECT_TRUE(only_prefix_matches("tune/search.small", "tune/"));
}

TEST(OnlyFilter, DotSeparatedMetricNamesAnchorTheSameWay) {
  EXPECT_TRUE(only_prefix_matches("sweep.run_schedules", "sweep"));
  EXPECT_FALSE(only_prefix_matches("sweeper.run", "sweep"));
  EXPECT_TRUE(only_prefix_matches("tune/search.small", "tune/search"));
  EXPECT_FALSE(only_prefix_matches("tune/searcher.big", "tune/search"));
}

TEST(OnlyFilter, ExactMatchAlwaysSelects) {
  EXPECT_TRUE(only_prefix_matches("sim", "sim"));
  EXPECT_TRUE(only_prefix_matches("tune/search.small", "tune/search.small"));
}

TEST(OnlyFilter, EmptyOnlyListSelectsEverything) {
  EXPECT_TRUE(only_selects({}, "sim/run"));
  EXPECT_TRUE(only_selects({}, "anything"));
  EXPECT_TRUE(only_selects({"sim"}, "sim/run"));
  EXPECT_FALSE(only_selects({"sim"}, "sim_legacy/run"));
  EXPECT_TRUE(only_selects({"nope", "sweep"}, "sweep.cache_hits"));
}
