// Search-layer contract (DESIGN §15): the seeded beam is deterministic,
// never accepts an IR-gate failure, respects memory caps through the scoring
// penalty, and — the ISSUE acceptance criterion in miniature — rediscovers a
// two-fold-or-better schedule from the naive FILO seed under priced
// communication.
#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/validator.h"
#include "sim/sweep.h"
#include "tune/search.h"

using namespace helix;

namespace {

core::PipelineProblem make_problem(int p, int m, int L) {
  core::PipelineProblem pr;
  pr.p = p;
  pr.m = m;
  pr.L = L;
  pr.comm.boundary = 10;
  pr.comm.pre_to_attn = 10;
  pr.comm.attn_to_post = 10;
  pr.include_lm_head = true;  // numerically executable (the gate's contract)
  pr.act.pre = 2;
  pr.act.attn = 3;
  pr.act.post = 11;
  pr.act.attn_recompute = 2;
  pr.act.post_recompute = 2;
  return pr;
}

/// Paper unit costs with priced communication — under free comm the naive
/// FILO order is already optimal and there is nothing to search for.
core::UnitCostModel priced_cost() {
  core::UnitCostModel::Units u;
  u.pre = 1.0;
  u.attn = 3.0;
  u.post = 2.0;
  u.seconds_per_elem = 0.1;
  return core::UnitCostModel{u};
}

tune::TuneOptions short_budget() {
  tune::TuneOptions opt;
  opt.beam_width = 4;
  opt.generations = 8;
  opt.children_per_parent = 6;
  opt.patience = 4;
  opt.seed = 1;
  return opt;
}

}  // namespace

TEST(Search, NaiveSeedReachesTwoFoldBubbleUnderPricedComm) {
  const core::PipelineProblem pr = make_problem(4, 8, 8);
  const core::UnitCostModel cost = priced_cost();
  sim::Sweep sweep;

  tune::TuneOptions opt = short_budget();
  opt.seed_families = {"helix_naive"};
  const tune::TuneReport rep = tune::tune(pr, cost, opt, &sweep);

  ASSERT_TRUE(rep.best.outcome.ok) << rep.best.outcome.error;
  const auto two =
      sweep.run({sim::SweepItem{"helix_two_fold", pr, &cost, {}}});
  ASSERT_TRUE(two[0].ok) << two[0].error;
  EXPECT_LE(rep.best.outcome.total_bubble, two[0].total_bubble)
      << "lineage: " << rep.best.lineage;

  // Everything the beam accepted passed the IR gate.
  EXPECT_EQ(rep.candidates_invalid, 0);
  // The winner itself is valid and carries its seed's provenance.
  EXPECT_TRUE(core::validate_semantics(rep.best.schedule).ok);
  EXPECT_TRUE(core::validate_coverage(rep.best.schedule).ok);
  EXPECT_EQ(rep.best.prov.family, "helix_naive");
}

TEST(Search, SameSeedIsDeterministicAcrossRuns) {
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  const core::UnitCostModel cost = priced_cost();
  const tune::TuneOptions opt = short_budget();

  const tune::TuneReport a = tune::tune(pr, cost, opt);
  const tune::TuneReport b = tune::tune(pr, cost, opt);
  EXPECT_EQ(a.best.score, b.best.score);
  EXPECT_EQ(a.best.lineage, b.best.lineage);
  EXPECT_EQ(a.best.outcome.makespan, b.best.outcome.makespan);
  EXPECT_EQ(a.candidates_scored, b.candidates_scored);
  EXPECT_EQ(a.candidates_deduped, b.candidates_deduped);
}

TEST(Search, TunedNeverLosesToItsSeeds) {
  // The beam keeps parents, so the winner can never score worse than the
  // best seed baseline.
  const core::PipelineProblem pr = make_problem(2, 4, 8);
  const core::UnitCostModel cost = priced_cost();
  const tune::TuneReport rep = tune::tune(pr, cost, short_budget());
  ASSERT_TRUE(rep.best.outcome.ok);
  for (const tune::FamilyBaseline& b : rep.baselines) {
    if (!b.outcome.ok) continue;
    EXPECT_LE(rep.best.outcome.makespan, b.outcome.makespan) << b.family;
  }
}

TEST(Search, MemoryCapSteersSelectionWhenFeasible) {
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  const core::UnitCostModel cost = priced_cost();

  // First, unconstrained: record the winner's peak.
  const tune::TuneReport free_run = tune::tune(pr, cost, short_budget());
  ASSERT_TRUE(free_run.best.outcome.ok);

  // Then cap at the recompute baseline's peak — feasible candidates exist
  // (helix_two_fold_rc), so the tuned winner must respect the cap.
  std::int64_t rc_peak = 0;
  for (const tune::FamilyBaseline& b : free_run.baselines) {
    if (b.family == "helix_two_fold_rc" && b.outcome.ok) {
      rc_peak = b.outcome.max_peak_memory;
    }
  }
  ASSERT_GT(rc_peak, 0);
  tune::TuneOptions capped = short_budget();
  capped.memory_cap_bytes = rc_peak;
  const tune::TuneReport rep = tune::tune(pr, cost, capped);
  ASSERT_TRUE(rep.best.outcome.ok);
  EXPECT_LE(rep.best.outcome.max_peak_memory, rc_peak)
      << "lineage: " << rep.best.lineage;
}

TEST(Search, ThrowsWhenNoSeedFamilyApplies) {
  core::PipelineProblem pr = make_problem(4, 8, 8);
  pr.m = 3;  // helix families need m % 2p == 0
  const core::UnitCostModel cost = priced_cost();
  tune::TuneOptions opt = short_budget();
  opt.seed_families = {"helix_two_fold"};
  EXPECT_THROW(tune::tune(pr, cost, opt), std::invalid_argument);
}
