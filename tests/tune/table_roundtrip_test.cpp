// Lossless round-trip contract of the tabular schedule view (DESIGN §15):
// lower(lift(s)) is op-for-op identical to s — every field, every dependency
// — for every family in the registry, across seeded helix_check shapes. The
// compiled (SoA) forms must match too, which pins the stronger property that
// every consumer of the IR (simulator, validators, runtime interpreter) sees
// exactly the same program through either view.
#include <gtest/gtest.h>

#include <vector>

#include "check/config.h"
#include "core/compiled.h"
#include "core/cost.h"
#include "core/validator.h"
#include "schedules/registry.h"
#include "tune/table.h"

using namespace helix;

namespace {

core::PipelineProblem make_problem(int p, int m, int L) {
  core::PipelineProblem pr;
  pr.p = p;
  pr.m = m;
  pr.L = L;
  pr.comm.boundary = 10;
  pr.comm.pre_to_attn = 10;
  pr.comm.attn_to_post = 10;
  pr.include_lm_head = true;  // numerically executable (the gate's contract)
  pr.act.pre = 2;
  pr.act.attn = 3;
  pr.act.post = 11;
  pr.act.attn_recompute = 2;
  pr.act.post_recompute = 2;
  return pr;
}

core::UnitCostModel unit_cost() {
  core::UnitCostModel::Units u;
  u.pre = 1.0;
  u.attn = 3.0;
  u.post = 2.0;
  u.seconds_per_elem = 0.1;
  return core::UnitCostModel{u};
}

void expect_ops_identical(const core::Schedule& a, const core::Schedule& b) {
  ASSERT_EQ(a.name, b.name);
  ASSERT_EQ(a.num_stages, b.num_stages);
  ASSERT_EQ(a.num_micro_batches, b.num_micro_batches);
  ASSERT_EQ(a.num_layers, b.num_layers);
  ASSERT_EQ(a.stage_ops.size(), b.stage_ops.size());
  for (std::size_t s = 0; s < a.stage_ops.size(); ++s) {
    SCOPED_TRACE("stage " + std::to_string(s));
    ASSERT_EQ(a.stage_ops[s].size(), b.stage_ops[s].size());
    for (std::size_t i = 0; i < a.stage_ops[s].size(); ++i) {
      const core::Op& x = a.stage_ops[s][i];
      const core::Op& y = b.stage_ops[s][i];
      SCOPED_TRACE("op " + std::to_string(i));
      EXPECT_EQ(x.id, y.id);
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.stage, y.stage);
      EXPECT_EQ(x.mb, y.mb);
      EXPECT_EQ(x.layer, y.layer);
      EXPECT_EQ(x.peer, y.peer);
      EXPECT_EQ(x.tag, y.tag);
      EXPECT_EQ(x.slot, y.slot);
      EXPECT_EQ(x.comm_elems, y.comm_elems);
      EXPECT_EQ(x.alloc_bytes, y.alloc_bytes);
      EXPECT_EQ(x.free_bytes, y.free_bytes);
      EXPECT_EQ(x.transient_bytes, y.transient_bytes);
      EXPECT_EQ(x.combines_w, y.combines_w);
      EXPECT_EQ(x.deps, y.deps);
    }
  }
}

void expect_compiled_identical(const core::CompiledSchedule& a,
                               const core::CompiledSchedule& b) {
  EXPECT_EQ(a.num_stages, b.num_stages);
  EXPECT_EQ(a.num_micro_batches, b.num_micro_batches);
  EXPECT_EQ(a.num_layers, b.num_layers);
  EXPECT_EQ(a.num_edges, b.num_edges);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.mb, b.mb);
  EXPECT_EQ(a.layer, b.layer);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.comm_elems, b.comm_elems);
  EXPECT_EQ(a.mem_acquire, b.mem_acquire);
  EXPECT_EQ(a.mem_release, b.mem_release);
  EXPECT_EQ(a.dep_offset, b.dep_offset);
  EXPECT_EQ(a.dep_edges, b.dep_edges);
  EXPECT_EQ(a.succ_offset, b.succ_offset);
  EXPECT_EQ(a.succ_edges, b.succ_edges);
  EXPECT_EQ(a.stream_pred, b.stream_pred);
  EXPECT_EQ(a.matching_send, b.matching_send);
  EXPECT_EQ(a.send_of_tag, b.send_of_tag);
  EXPECT_EQ(a.recv_of_tag, b.recv_of_tag);
  EXPECT_EQ(a.stage_offset, b.stage_offset);
  EXPECT_EQ(a.stage_program, b.stage_program);
  EXPECT_EQ(a.compute_offset, b.compute_offset);
  EXPECT_EQ(a.compute_chain, b.compute_chain);
  EXPECT_EQ(a.mem_count, b.mem_count);
  EXPECT_EQ(a.topo, b.topo);
}

}  // namespace

// The core property: lift then lower reproduces the schedule exactly — both
// as IR records and as the compiled SoA form — for every applicable family
// on every seeded helix_check shape.
TEST(TableRoundtrip, LowerLiftIsIdentityForAllFamiliesOnSeededShapes) {
  const core::UnitCostModel cost = unit_cost();
  for (const check::CheckConfig& cfg : check::generate_configs(7, 8)) {
    const core::PipelineProblem pr = make_problem(cfg.p, cfg.m, cfg.L);
    for (const schedules::FamilySpec& fam : schedules::family_registry()) {
      if (!fam.applicable(pr)) continue;
      SCOPED_TRACE(std::string(fam.key) + " p=" + std::to_string(pr.p) + " m=" +
                   std::to_string(pr.m) + " L=" + std::to_string(pr.L));
      const core::Schedule original = fam.build(pr, cost);
      const tune::Table table = tune::Table::lift(original);
      const core::Schedule lowered = table.lower();
      expect_ops_identical(original, lowered);
      expect_compiled_identical(core::CompiledSchedule::build(original),
                                core::CompiledSchedule::build(lowered));
      // The lowered form satisfies the same validity contract.
      EXPECT_TRUE(core::validate_structure(lowered).ok);
      EXPECT_TRUE(core::validate_semantics(lowered).ok);
      EXPECT_TRUE(core::validate_coverage(lowered).ok);
    }
  }
}

TEST(TableRoundtrip, FindReturnsEveryOpAndFingerprintIsOrderSensitive) {
  const core::UnitCostModel cost = unit_cost();
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  const core::Schedule sched =
      schedules::family_registry().front().build(pr, cost);
  tune::Table t = tune::Table::lift(sched);

  for (const auto& stage : sched.stage_ops) {
    for (const core::Op& op : stage) {
      const auto at = t.find(op.id);
      ASSERT_TRUE(at.has_value());
      EXPECT_EQ(t.cell(at->rank, at->slot).op.id, op.id);
    }
  }
  EXPECT_FALSE(t.find(-1).has_value());
  EXPECT_FALSE(t.find(static_cast<core::OpId>(t.total_cells())).has_value());

  const std::uint64_t before = t.fingerprint();
  // Find any applicable swap; the fingerprint must change with the order.
  bool swapped = false;
  for (int r = 0; r < t.ranks() && !swapped; ++r) {
    for (int s = 0; s + 1 < t.slots(r) && !swapped; ++s) {
      swapped = t.try_swap(r, s);
    }
  }
  ASSERT_TRUE(swapped);
  EXPECT_NE(t.fingerprint(), before);
}

TEST(TableRoundtrip, LiftRejectsNonDenseIds) {
  core::Schedule s;
  s.name = "bad";
  s.num_stages = 1;
  s.num_micro_batches = 1;
  s.num_layers = 1;
  s.stage_ops.resize(1);
  core::Op op;
  op.id = 5;  // not dense: only one op, id must be 0
  s.stage_ops[0].push_back(op);
  EXPECT_THROW(tune::Table::lift(s), std::invalid_argument);
}
