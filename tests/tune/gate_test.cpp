// Numeric differential gate: a tuner-mutated schedule, injected into
// runtime::Trainer through TrainerOptions::schedule, must train bit-identical
// to the sequential reference under both comm engines — and the gate must
// reject schedules whose shape does not match the model.
#include <gtest/gtest.h>

#include <random>

#include "core/cost.h"
#include "schedules/registry.h"
#include "tune/gate.h"
#include "tune/mutate.h"
#include "tune/table.h"

using namespace helix;

namespace {

core::PipelineProblem make_problem(int p, int m, int L) {
  core::PipelineProblem pr;
  pr.p = p;
  pr.m = m;
  pr.L = L;
  pr.comm.boundary = 10;
  pr.comm.pre_to_attn = 10;
  pr.comm.attn_to_post = 10;
  pr.include_lm_head = true;  // numerically executable (the gate's contract)
  pr.act.pre = 2;
  pr.act.attn = 3;
  pr.act.post = 11;
  pr.act.attn_recompute = 2;
  pr.act.post_recompute = 2;
  return pr;
}

core::UnitCostModel unit_cost() {
  core::UnitCostModel::Units u;
  u.seconds_per_elem = 0.1;
  return core::UnitCostModel{u};
}

nn::MiniGptConfig tiny_model(int m, int L) {
  nn::MiniGptConfig cfg;
  cfg.layers = L;
  cfg.micro_batches = m;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.seq = 8;
  cfg.vocab = 32;
  return cfg;
}

/// Build `family`, then scramble it with seeded mutations (the gate's whole
/// point is schedules nobody hand-verified).
core::Schedule mutated_schedule(const std::string& family,
                                const core::PipelineProblem& pr,
                                std::uint64_t seed) {
  const core::UnitCostModel cost = unit_cost();
  for (const schedules::FamilySpec& fam : schedules::family_registry()) {
    if (fam.key != family) continue;
    tune::Genome g;
    g.prov.problem = pr;
    g.prov.family = family;
    g.table = tune::Table::lift(fam.build(pr, cost));
    std::mt19937_64 rng(seed);
    const tune::MutationOptions opt;
    for (int i = 0; i < 12; ++i) {
      // Order mutations only: the gate config below assumes the seed op set
      // (no recompute toggles), which is how search provenance drives it.
      const tune::MutationKind kinds[] = {
          tune::MutationKind::kSwapAdjacent, tune::MutationKind::kMoveWEarlier,
          tune::MutationKind::kHoistRecv, tune::MutationKind::kWidenLookahead,
          tune::MutationKind::kRelist};
      tune::apply_mutation(g, kinds[rng() % 5], rng, cost, opt);
    }
    return g.table.lower();
  }
  ADD_FAILURE() << "unknown family " << family;
  return {};
}

}  // namespace

TEST(Gate, MutatedHelixSchedulePassesBitIdentical) {
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  const core::Schedule sched = mutated_schedule("helix_naive", pr, 5);
  tune::GateConfig cfg;
  cfg.model = tiny_model(pr.m, pr.L);
  cfg.pipeline_stages = pr.p;
  const tune::GateResult res = tune::differential_gate(sched, cfg);
  EXPECT_TRUE(res.ok()) << (res.errors.empty() ? "" : res.errors.front());
}

TEST(Gate, MutatedLayerwiseSchedulePassesUnderAdam) {
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  const core::Schedule sched = mutated_schedule("zb1p", pr, 11);
  tune::GateConfig cfg;
  cfg.model = tiny_model(pr.m, pr.L);
  cfg.pipeline_stages = pr.p;
  cfg.adam = true;
  const tune::GateResult res = tune::differential_gate(sched, cfg);
  EXPECT_TRUE(res.ok()) << (res.errors.empty() ? "" : res.errors.front());
}

TEST(Gate, ShapeMismatchIsReportedNotSilentlyTrained) {
  // Schedule for m=4 micro-batches, model with m=8: the injected-schedule
  // path must refuse, and the gate converts the throw into an error.
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  const core::Schedule sched = mutated_schedule("helix_naive", pr, 5);
  tune::GateConfig cfg;
  cfg.model = tiny_model(/*m=*/8, pr.L);
  cfg.pipeline_stages = pr.p;
  const tune::GateResult res = tune::differential_gate(sched, cfg);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.errors.front().find("exception"), std::string::npos);
}
