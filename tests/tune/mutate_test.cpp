// Mutation well-formedness: every operator in tune/mutate.h, applied to
// every registry family, must leave the lowered schedule valid under the
// full helix_check IR gate (structure + per-micro-batch semantics + coverage)
// and compilable. This pins the safety argument of DESIGN §15: order
// mutations go through the table's semantics-aware swap primitive, and
// regeneration mutations go through the family builders — so no mutation can
// produce an unexecutable or wrong-math schedule.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/compiled.h"
#include "core/cost.h"
#include "core/validator.h"
#include "schedules/registry.h"
#include "tune/mutate.h"
#include "tune/table.h"

using namespace helix;

namespace {

core::PipelineProblem make_problem(int p, int m, int L) {
  core::PipelineProblem pr;
  pr.p = p;
  pr.m = m;
  pr.L = L;
  pr.comm.boundary = 10;
  pr.comm.pre_to_attn = 10;
  pr.comm.attn_to_post = 10;
  pr.include_lm_head = true;  // numerically executable (the gate's contract)
  pr.act.pre = 2;
  pr.act.attn = 3;
  pr.act.post = 11;
  pr.act.attn_recompute = 2;
  pr.act.post_recompute = 2;
  return pr;
}

core::UnitCostModel unit_cost() {
  core::UnitCostModel::Units u;
  u.pre = 1.0;
  u.attn = 3.0;
  u.post = 2.0;
  u.seconds_per_elem = 0.1;
  return core::UnitCostModel{u};
}

void expect_valid(const core::Schedule& s, const std::string& what) {
  SCOPED_TRACE(what);
  const auto st = core::validate_structure(s);
  EXPECT_TRUE(st.ok) << (st.errors.empty() ? "" : st.errors.front());
  const auto sem = core::validate_semantics(s);
  EXPECT_TRUE(sem.ok) << (sem.errors.empty() ? "" : sem.errors.front());
  const auto cov = core::validate_coverage(s);
  EXPECT_TRUE(cov.ok) << (cov.errors.empty() ? "" : cov.errors.front());
  EXPECT_NO_THROW(core::CompiledSchedule::build(s));
}

}  // namespace

// The sweep: every mutation kind, every family, several RNG streams. Any
// applied mutation must keep the schedule valid. This is the regression net
// for the stream-order hole: layer-wise families (1f1b, gpipe, ...) encode
// the per-micro-batch FwdPre -> FwdAttn -> FwdPost chain through stream
// order with no explicit dep, so a purely acyclicity-based swap check
// accepts semantics-breaking reorders. Table::lift materializes those
// constraints as implicit edges; this test fails if that ever regresses.
TEST(Mutate, EveryKindOnEveryFamilyStaysValid) {
  const core::UnitCostModel cost = unit_cost();
  const core::PipelineProblem pr = make_problem(4, 8, 8);
  const tune::MutationOptions opt;
  for (const schedules::FamilySpec& fam : schedules::family_registry()) {
    if (!fam.applicable(pr)) continue;
    for (int kind = 0; kind < tune::kNumMutationKinds; ++kind) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto mk = static_cast<tune::MutationKind>(kind);
        tune::Genome g;
        g.prov.problem = pr;
        g.prov.family = fam.key;
        g.prov.recompute = std::string(fam.key) == "helix_two_fold_rc";
        g.table = tune::Table::lift(fam.build(pr, cost));
        g.lineage = fam.key;
        std::mt19937_64 rng(seed);
        if (!tune::apply_mutation(g, mk, rng, cost, opt)) continue;
        expect_valid(g.table.lower(), std::string(fam.key) + " +" + tune::to_string(mk) +
                                          " seed=" + std::to_string(seed));
      }
    }
  }
}

// Stacked mutations stay valid too — the search applies several per child.
TEST(Mutate, LongRandomMutationChainsStayValid) {
  const core::UnitCostModel cost = unit_cost();
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  const tune::MutationOptions opt;
  for (const schedules::FamilySpec& fam : schedules::family_registry()) {
    if (!fam.applicable(pr)) continue;
    tune::Genome g;
    g.prov.problem = pr;
    g.prov.family = fam.key;
    g.table = tune::Table::lift(fam.build(pr, cost));
    g.lineage = fam.key;
    std::mt19937_64 rng(99);
    for (int step = 0; step < 40; ++step) {
      const auto mk = static_cast<tune::MutationKind>(
          rng() % static_cast<std::uint64_t>(tune::kNumMutationKinds));
      if (!tune::apply_mutation(g, mk, rng, cost, opt)) continue;
      expect_valid(g.table.lower(),
                   std::string(fam.key) + " step " + std::to_string(step) + " (" +
                       tune::to_string(mk) + ")");
    }
  }
}

// A refused swap must leave the table untouched, and can_swap must agree
// with try_swap.
TEST(Mutate, RefusedSwapLeavesTableUnchanged) {
  const core::UnitCostModel cost = unit_cost();
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  const core::Schedule sched =
      schedules::family_registry().front().build(pr, cost);
  tune::Table t = tune::Table::lift(sched);
  for (int r = 0; r < t.ranks(); ++r) {
    for (int s = 0; s + 1 < t.slots(r); ++s) {
      const std::uint64_t before = t.fingerprint();
      const bool can = t.can_swap(r, s);
      tune::Table copy = t;
      EXPECT_EQ(copy.try_swap(r, s), can);
      if (!can) EXPECT_EQ(copy.fingerprint(), before);
    }
  }
}

// Regeneration mutations update provenance so downstream consumers (the
// numeric gate's interpreter configuration) stay in sync with the op set.
TEST(Mutate, ToggleRecomputeFlipsProvenanceAndOpSet) {
  const core::UnitCostModel cost = unit_cost();
  const core::PipelineProblem pr = make_problem(2, 4, 4);
  tune::Genome g;
  g.prov.problem = pr;
  g.prov.family = "helix_two_fold";
  g.prov.recompute = false;
  tune::MutationOptions opt;
  for (const schedules::FamilySpec& fam : schedules::family_registry()) {
    if (std::string(fam.key) == "helix_two_fold") g.table = tune::Table::lift(fam.build(pr, cost));
  }
  ASSERT_GT(g.table.total_cells(), 0u);
  const std::uint64_t before = g.table.fingerprint();
  std::mt19937_64 rng(1);
  ASSERT_TRUE(tune::apply_mutation(g, tune::MutationKind::kToggleRecompute,
                                   rng, cost, opt));
  EXPECT_TRUE(g.prov.recompute);
  EXPECT_NE(g.table.fingerprint(), before);  // recompute ops appeared
  expect_valid(g.table.lower(), "toggled recompute");

  // Non-helix families refuse the toggle.
  tune::Genome lw;
  lw.prov.problem = pr;
  lw.prov.family = "1f1b";
  for (const schedules::FamilySpec& fam : schedules::family_registry()) {
    if (std::string(fam.key) == "1f1b") lw.table = tune::Table::lift(fam.build(pr, cost));
  }
  EXPECT_FALSE(tune::apply_mutation(lw, tune::MutationKind::kToggleRecompute,
                                    rng, cost, opt));
}
