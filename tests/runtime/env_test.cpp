// Checked HELIX_* environment parsing: the std::atoi path this replaced
// silently turned garbage into 0 (HELIX_HEALTH_WINDOW_MS=abc -> a watchdog
// firing instantly). parse_env_int must reject every malformed input with an
// error naming the variable, the value and the accepted range.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "runtime/env.h"

using namespace helix::runtime;

namespace {

std::string error_of(const std::string& name, const std::string& value,
                     int lo, int hi) {
  try {
    parse_env_int(name, value, lo, hi);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << name << "=\"" << value << "\" parsed without error";
  return {};
}

/// RAII environment variable for the getenv-backed wrappers.
struct ScopedEnv {
  explicit ScopedEnv(const char* n, const char* v) : name(n) {
    ::setenv(n, v, 1);
  }
  ~ScopedEnv() { ::unsetenv(name); }
  const char* name;
};

}  // namespace

TEST(ParseEnvInt, AcceptsPlainIntegersAndRangeEndpoints) {
  EXPECT_EQ(parse_env_int("X", "0", -10, 10), 0);
  EXPECT_EQ(parse_env_int("X", "42", 0, 100), 42);
  EXPECT_EQ(parse_env_int("X", "-8", -10, 10), -8);
  EXPECT_EQ(parse_env_int("X", "10", -10, 10), 10);   // upper endpoint
  EXPECT_EQ(parse_env_int("X", "-10", -10, 10), -10); // lower endpoint
  EXPECT_EQ(parse_env_int("X", "  7", 0, 10), 7);     // strtoll skips spaces
}

TEST(ParseEnvInt, RejectsGarbage) {
  EXPECT_THROW(parse_env_int("HELIX_HEALTH_WINDOW_MS", "abc", 1, 1 << 30),
               std::invalid_argument);
  EXPECT_THROW(parse_env_int("X", "12ms", 0, 100), std::invalid_argument);
  EXPECT_THROW(parse_env_int("X", "1.5", 0, 100), std::invalid_argument);
  EXPECT_THROW(parse_env_int("X", "--3", -10, 10), std::invalid_argument);
  EXPECT_THROW(parse_env_int("X", " ", 0, 100), std::invalid_argument);
}

TEST(ParseEnvInt, RejectsEmpty) {
  EXPECT_THROW(parse_env_int("X", "", 0, 100), std::invalid_argument);
}

TEST(ParseEnvInt, RejectsOverflowAndOutOfRange) {
  // Overflows long long and int respectively.
  EXPECT_THROW(parse_env_int("X", "99999999999999999999999999", 0, 1 << 30),
               std::invalid_argument);
  EXPECT_THROW(parse_env_int("X", "9999999999", 0, 1 << 30),
               std::invalid_argument);
  // In-type but outside the caller's range.
  EXPECT_THROW(parse_env_int("X", "101", 0, 100), std::invalid_argument);
  EXPECT_THROW(parse_env_int("X", "-1", 0, 100), std::invalid_argument);
}

TEST(ParseEnvInt, ErrorsNameVariableValueAndRange) {
  const std::string e =
      error_of("HELIX_COMM_LOOKAHEAD", "120ms", -1, 1 << 30);
  EXPECT_NE(e.find("HELIX_COMM_LOOKAHEAD"), std::string::npos) << e;
  EXPECT_NE(e.find("120ms"), std::string::npos) << e;
  EXPECT_NE(e.find("-1"), std::string::npos) << e;  // range lower bound
}

TEST(EnvInt, UnsetAndEmptyMeanKeepDefault) {
  ::unsetenv("HELIX_ENV_TEST_VAR");
  EXPECT_FALSE(env_int("HELIX_ENV_TEST_VAR", 0, 100).has_value());
  {
    ScopedEnv e("HELIX_ENV_TEST_VAR", "");
    EXPECT_FALSE(env_int("HELIX_ENV_TEST_VAR", 0, 100).has_value());
  }
  {
    ScopedEnv e("HELIX_ENV_TEST_VAR", "17");
    EXPECT_EQ(env_int("HELIX_ENV_TEST_VAR", 0, 100).value(), 17);
  }
  {
    ScopedEnv e("HELIX_ENV_TEST_VAR", "17q");
    EXPECT_THROW(env_int("HELIX_ENV_TEST_VAR", 0, 100),
                 std::invalid_argument);
  }
}

TEST(EnvFlag, ZeroIsFalseAnythingElseIsTrue) {
  ::unsetenv("HELIX_ENV_TEST_FLAG");
  EXPECT_FALSE(env_flag("HELIX_ENV_TEST_FLAG").has_value());
  {
    ScopedEnv e("HELIX_ENV_TEST_FLAG", "");
    EXPECT_FALSE(env_flag("HELIX_ENV_TEST_FLAG").has_value());
  }
  {
    ScopedEnv e("HELIX_ENV_TEST_FLAG", "0");
    EXPECT_EQ(env_flag("HELIX_ENV_TEST_FLAG"), std::optional<bool>(false));
  }
  for (const char* v : {"1", "true", "yes", "off"}) {
    ScopedEnv e("HELIX_ENV_TEST_FLAG", v);
    EXPECT_EQ(env_flag("HELIX_ENV_TEST_FLAG"), std::optional<bool>(true)) << v;
  }
}

TEST(EnvString, UnsetAndEmptyAreNullopt) {
  ::unsetenv("HELIX_ENV_TEST_STR");
  EXPECT_FALSE(env_string("HELIX_ENV_TEST_STR").has_value());
  {
    ScopedEnv e("HELIX_ENV_TEST_STR", "");
    EXPECT_FALSE(env_string("HELIX_ENV_TEST_STR").has_value());
  }
  {
    ScopedEnv e("HELIX_ENV_TEST_STR", "/tmp/dump");
    EXPECT_EQ(env_string("HELIX_ENV_TEST_STR").value(), "/tmp/dump");
  }
}
