// End-to-end live-run health through the Trainer, across both comm engines:
//  * a detached run is bit-identical to an attached one (zero-cost contract);
//  * an injected rank kill aborts the step, and the merged post-mortem names
//    the faulting rank while every blocked survivor contributes its recorder
//    tail and blocked-at-death state;
//  * an injected hung delivery trips the watchdog within the configured
//    window, and the wait-graph names the blocked (src, dst, tag) edge;
//  * dump files land in HealthOptions::dump_dir.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "nn/reference.h"
#include "runtime/trainer.h"

namespace helix::runtime {
namespace {

nn::MiniGptConfig tiny_config(int layers = 4, int micro_batches = 4) {
  return {.layers = layers, .hidden = 16, .heads = 2, .seq = 8, .batch = 1,
          .vocab = 32, .micro_batches = micro_batches, .lr = 0.05f};
}

obs::HealthOptions quiet_health() {
  obs::HealthOptions h;
  h.enabled = true;
  // Wide window: these runs finish in milliseconds, the watchdog must not
  // trip spuriously even on a loaded CI machine.
  h.no_progress_window_ms = 60000;
  h.poll_interval_ms = 50;
  return h;
}

/// The first pipeline Send of stage 0: the (dst, tag) to fault.
core::Op first_stage0_send(const core::Schedule& sched) {
  for (const core::Op& op : sched.stage_ops[0]) {
    if (op.kind == core::OpKind::kSend) return op;
  }
  ADD_FAILURE() << "schedule has no Send on stage 0";
  return {};
}

class HealthEngines : public ::testing::TestWithParam<bool> {};

TEST_P(HealthEngines, AttachedRunIsBitIdenticalToDetached) {
  const bool async = GetParam();
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 77);
  nn::ModelParams detached = nn::ModelParams::init(cfg, 7);
  nn::ModelParams attached = nn::ModelParams::init(cfg, 7);
  Trainer plain(detached, {.family = ScheduleFamily::kHelixTwoFold,
                           .pipeline_stages = 2,
                           .async_comm = async});
  Trainer health(attached, {.family = ScheduleFamily::kHelixTwoFold,
                            .pipeline_stages = 2,
                            .async_comm = async,
                            .health = quiet_health()});
  for (int iter = 0; iter < 2; ++iter) {
    const IterationMetrics a = plain.train_step(batch);
    const IterationMetrics b = health.train_step(batch);
    ASSERT_EQ(a.micro_batch_losses.size(), b.micro_batch_losses.size());
    for (std::size_t mb = 0; mb < a.micro_batch_losses.size(); ++mb) {
      EXPECT_EQ(a.micro_batch_losses[mb], b.micro_batch_losses[mb]);
    }
    EXPECT_EQ(detached.max_diff(attached), 0.0) << "after iter " << iter;
  }
  // The attached run actually recorded: rings hold op + comm events.
  ASSERT_NE(health.health_collector(), nullptr);
  EXPECT_EQ(plain.last_post_mortem(), nullptr);
  for (int r = 0; r < 2; ++r) {
    EXPECT_GT(health.health_collector()->recorder(r).total(), 0u) << r;
    EXPECT_GT(health.health_collector()->cell(r).ops_retired.load(), 0) << r;
  }
}

TEST_P(HealthEngines, RankKillProducesMergedPostMortem) {
  const bool async = GetParam();
  const nn::MiniGptConfig cfg = tiny_config(8, 4);
  const nn::Batch batch = nn::Batch::random(cfg, 78);
  nn::ModelParams params = nn::ModelParams::init(cfg, 8);
  comm::FaultPlan plan;
  plan.kills.push_back({1, 1});  // rank 1 dies at the start of step 1
  obs::HealthOptions h = quiet_health();
  h.faults = &plan;
  Trainer trainer(params, {.family = ScheduleFamily::k1F1B,
                           .pipeline_stages = 4,
                           .async_comm = async,
                           .health = h});
  (void)trainer.train_step(batch);  // step 0 is clean
  EXPECT_EQ(trainer.last_post_mortem(), nullptr);
  EXPECT_THROW((void)trainer.train_step(batch), comm::FaultInjected);

  const obs::PostMortem* pm = trainer.last_post_mortem();
  ASSERT_NE(pm, nullptr);
  // The merged report names the faulting rank...
  EXPECT_NE(pm->reason.find("rank 1"), std::string::npos) << pm->reason;
  ASSERT_EQ(pm->ranks.size(), 4u);
  // ...and every rank contributes a non-empty recorder tail (step 0 alone
  // guarantees events everywhere).
  int blocked_ranks = 0;
  for (const obs::RankDump& d : pm->ranks) {
    EXPECT_FALSE(d.tail.empty()) << "rank " << d.rank;
    const bool blocked = d.state.kind == obs::BlockedKind::kRecv ||
                         d.state.kind == obs::BlockedKind::kHandleWait ||
                         d.state.kind == obs::BlockedKind::kBarrier;
    if (blocked) {
      ++blocked_ranks;
      // A blocked survivor's cell names a concrete (src, tag) or barrier.
      if (d.state.kind != obs::BlockedKind::kBarrier) {
        EXPECT_GE(d.state.src, 0) << "rank " << d.rank;
        EXPECT_GE(d.state.tag, 0) << "rank " << d.rank;
      }
    }
  }
  // The killed rank's neighbors were mid-pipeline: someone was blocked on it.
  EXPECT_GT(blocked_ranks, 0);
  EXPECT_FALSE(pm->hang.tripped);  // crash path, not a watchdog trip
}

TEST_P(HealthEngines, HungDeliveryTripsWatchdogAndNamesEdge) {
  const bool async = GetParam();
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 79);
  nn::ModelParams params = nn::ModelParams::init(cfg, 9);
  obs::HealthOptions h;
  h.enabled = true;
  h.no_progress_window_ms = 400;
  h.poll_interval_ms = 20;
  comm::FaultPlan plan;
  TrainerOptions opts{.family = ScheduleFamily::k1F1B,
                      .pipeline_stages = 2,
                      .async_comm = async};
  // Build once to learn the schedule's first stage-0 send, then fault it.
  const core::Op send = first_stage0_send(build_numeric_schedule(cfg, opts));
  plan.deliveries.emplace_back(0, send.peer, send.tag,
                               comm::DeliveryFault::Action::kHang);
  h.faults = &plan;
  opts.health = h;
  Trainer trainer(params, opts);
  try {
    (void)trainer.train_step(batch);
    FAIL() << "hung delivery must trip the watchdog";
  } catch (const HangDetected& e) {
    EXPECT_NE(std::string(e.what()).find("rank"), std::string::npos);
  }
  const obs::PostMortem* pm = trainer.last_post_mortem();
  ASSERT_NE(pm, nullptr);
  EXPECT_TRUE(pm->hang.tripped);
  EXPECT_NE(pm->hang.verdict, obs::HangVerdict::kNone);
  // The named stalled edge is the injected (src=0 -> dst, tag) delivery.
  EXPECT_EQ(pm->hang.stalled_edge.waiter, send.peer);
  EXPECT_EQ(pm->hang.stalled_edge.on, 0);
  EXPECT_EQ(pm->hang.stalled_edge.tag, send.tag);
  EXPECT_EQ(pm->hang.first_stalled_rank, send.peer);
}

TEST_P(HealthEngines, DumpFilesAreWrittenOnFailure) {
  const bool async = GetParam();
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 80);
  nn::ModelParams params = nn::ModelParams::init(cfg, 10);
  comm::FaultPlan plan;
  plan.kills.push_back({0, 0});
  obs::HealthOptions h = quiet_health();
  h.faults = &plan;
  const std::string dir = ::testing::TempDir() + "helix_health_dumps_" +
                          (async ? "async" : "blocking");
  std::filesystem::remove_all(dir);
  h.dump_dir = dir;
  Trainer trainer(params, {.family = ScheduleFamily::k1F1B,
                           .pipeline_stages = 2,
                           .async_comm = async,
                           .health = h});
  EXPECT_THROW((void)trainer.train_step(batch), comm::FaultInjected);
  EXPECT_TRUE(std::filesystem::exists(dir + "/postmortem_step0.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/postmortem_step0.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/postmortem_step0.trace.json"));
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Engines, HealthEngines, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("async")
                                             : std::string("blocking");
                         });

}  // namespace
}  // namespace helix::runtime
