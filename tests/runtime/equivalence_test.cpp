// The paper's Section 4.1 semantics-preservation claim, tested numerically:
// every pipeline schedule — 1F1B, GPipe, HelixPipe naive and two-fold, with
// and without recomputation-without-attention and chunked MLP — trains a
// real mini-GPT (threads as pipeline stages, tensors moved only by tagged
// send/recv) to exactly the same losses and parameters as the sequential
// reference. Exact equality holds because all reductions accumulate in
// double and micro-batch gradients are summed in canonical order.
#include <gtest/gtest.h>

#include "core/validator.h"
#include "nn/reference.h"
#include "runtime/trainer.h"

namespace helix::runtime {
namespace {

nn::MiniGptConfig test_config(int layers, int micro_batches) {
  return {.layers = layers, .hidden = 16, .heads = 2, .seq = 8, .batch = 1,
          .vocab = 32, .micro_batches = micro_batches, .lr = 0.05f};
}

struct Case {
  std::string name;
  ScheduleFamily family;
  int p;
  int layers;
  int micro_batches;
  bool recompute;
  int mlp_chunks;
};

class PipelineEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(PipelineEquivalence, MatchesSequentialReferenceExactly) {
  const Case c = GetParam();
  const nn::MiniGptConfig cfg = test_config(c.layers, c.micro_batches);
  const nn::Batch batch = nn::Batch::random(cfg, 1234);

  nn::ModelParams reference = nn::ModelParams::init(cfg, 42);
  nn::ModelParams piped = nn::ModelParams::init(cfg, 42);
  ASSERT_EQ(reference.max_diff(piped), 0.0);

  Trainer trainer(piped, {.family = c.family,
                          .pipeline_stages = c.p,
                          .recompute_without_attention = c.recompute,
                          .mlp_chunks = c.mlp_chunks});
  // The schedule driving the numerical run is itself semantically valid.
  const auto validation = core::validate_semantics(trainer.schedule());
  for (const auto& e : validation.errors) ADD_FAILURE() << e;

  for (int iter = 0; iter < 3; ++iter) {
    const nn::StepResult ref = nn::reference_train_step(reference, batch, c.mlp_chunks);
    const IterationMetrics got = trainer.train_step(batch);
    ASSERT_EQ(got.micro_batch_losses.size(), ref.micro_batch_losses.size());
    for (std::size_t mb = 0; mb < ref.micro_batch_losses.size(); ++mb) {
      EXPECT_EQ(got.micro_batch_losses[mb], ref.micro_batch_losses[mb])
          << "iter " << iter << " mb " << mb;
    }
    EXPECT_EQ(piped.max_diff(reference), 0.0) << "after iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, PipelineEquivalence,
    ::testing::Values(
        Case{"sequential_ir", ScheduleFamily::kSequential, 1, 4, 4, false, 1},
        Case{"onef1b_p2", ScheduleFamily::k1F1B, 2, 4, 4, false, 1},
        Case{"onef1b_p4", ScheduleFamily::k1F1B, 4, 8, 8, false, 1},
        Case{"gpipe_p2", ScheduleFamily::kGPipe, 2, 4, 4, false, 1},
        Case{"zb1p_p2", ScheduleFamily::kZb1p, 2, 4, 4, false, 1},
        Case{"zb1p_p4", ScheduleFamily::kZb1p, 4, 8, 8, false, 1},
        Case{"zb1p_chunked", ScheduleFamily::kZb1p, 2, 4, 4, false, 4},
        Case{"interleaved_p2", ScheduleFamily::kInterleaved, 2, 4, 4, false, 1},
        Case{"interleaved_p2_m8", ScheduleFamily::kInterleaved, 2, 8, 8, false, 1},
        Case{"helix_naive_p2", ScheduleFamily::kHelixNaive, 2, 4, 4, false, 1},
        Case{"helix_naive_p4", ScheduleFamily::kHelixNaive, 4, 8, 4, false, 1},
        Case{"helix_naive_rc", ScheduleFamily::kHelixNaive, 2, 4, 4, true, 1},
        Case{"helix_two_fold_p2", ScheduleFamily::kHelixTwoFold, 2, 4, 4, false, 1},
        Case{"helix_two_fold_p4", ScheduleFamily::kHelixTwoFold, 4, 8, 8, false, 1},
        Case{"helix_two_fold_rc", ScheduleFamily::kHelixTwoFold, 2, 4, 4, true, 1},
        Case{"helix_rc_chunked", ScheduleFamily::kHelixTwoFold, 2, 4, 4, true, 4},
        Case{"helix_two_loops", ScheduleFamily::kHelixTwoFold, 2, 4, 8, true, 1},
        Case{"helix_naive_p4_rc_chunked", ScheduleFamily::kHelixNaive, 4, 8, 8, true, 2}),
    [](const auto& info) { return info.param.name; });

TEST(Trainer, RejectsIndivisibleShapes) {
  const nn::MiniGptConfig cfg = test_config(4, 3);
  nn::ModelParams params = nn::ModelParams::init(cfg, 1);
  EXPECT_THROW(Trainer(params, {.family = ScheduleFamily::kHelixTwoFold,
                                .pipeline_stages = 2}),
               std::invalid_argument);
}

TEST(Trainer, RecomputeRejectedForLayerwise) {
  const nn::MiniGptConfig cfg = test_config(4, 4);
  nn::ModelParams params = nn::ModelParams::init(cfg, 1);
  EXPECT_THROW(Trainer(params, {.family = ScheduleFamily::k1F1B,
                                .pipeline_stages = 2,
                                .recompute_without_attention = true}),
               std::invalid_argument);
}

}  // namespace
}  // namespace helix::runtime
