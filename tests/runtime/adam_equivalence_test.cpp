// Adam across the pipeline: each rank keeps moment state for the parameters
// it owns (distributed optimizer state); training matches the sequential
// Adam reference exactly across iterations.
#include <gtest/gtest.h>

#include "nn/reference.h"
#include "runtime/trainer.h"

namespace helix::runtime {
namespace {

TEST(AdamEquivalence, HelixMatchesSequentialAdam) {
  const nn::MiniGptConfig cfg{.layers = 4, .hidden = 16, .heads = 2, .seq = 8,
                              .batch = 1, .vocab = 32, .micro_batches = 4,
                              .lr = 0.01f};
  const nn::Batch batch = nn::Batch::random(cfg, 555);
  nn::ModelParams reference = nn::ModelParams::init(cfg, 11);
  nn::ModelParams piped = nn::ModelParams::init(cfg, 11);
  nn::AdamState ref_state;

  Trainer trainer(piped, {.family = ScheduleFamily::kHelixTwoFold,
                          .pipeline_stages = 2,
                          .recompute_without_attention = true,
                          .optimizer = OptimizerKind::kAdam});
  for (int iter = 0; iter < 4; ++iter) {
    const auto ref = nn::reference_train_step_adam(reference, batch, ref_state);
    const auto got = trainer.train_step(batch);
    EXPECT_EQ(got.mean_loss(), ref.mean_loss) << "iter " << iter;
    EXPECT_EQ(piped.max_diff(reference), 0.0) << "iter " << iter;
  }
}

TEST(AdamEquivalence, Zb1pMatchesSequentialAdam) {
  const nn::MiniGptConfig cfg{.layers = 4, .hidden = 16, .heads = 2, .seq = 8,
                              .batch = 1, .vocab = 32, .micro_batches = 4,
                              .lr = 0.01f};
  const nn::Batch batch = nn::Batch::random(cfg, 556);
  nn::ModelParams reference = nn::ModelParams::init(cfg, 12);
  nn::ModelParams piped = nn::ModelParams::init(cfg, 12);
  nn::AdamState ref_state;
  Trainer trainer(piped, {.family = ScheduleFamily::kZb1p,
                          .pipeline_stages = 2,
                          .optimizer = OptimizerKind::kAdam});
  for (int iter = 0; iter < 3; ++iter) {
    const auto ref = nn::reference_train_step_adam(reference, batch, ref_state);
    const auto got = trainer.train_step(batch);
    EXPECT_EQ(got.mean_loss(), ref.mean_loss) << "iter " << iter;
    EXPECT_EQ(piped.max_diff(reference), 0.0) << "iter " << iter;
  }
}

TEST(Adam, ConvergesFasterThanSgdOnFixedBatch) {
  nn::MiniGptConfig cfg{.layers = 2, .hidden = 16, .heads = 2, .seq = 8,
                        .batch = 1, .vocab = 32, .micro_batches = 2,
                        .lr = 0.01f};
  const nn::Batch batch = nn::Batch::random(cfg, 99);
  nn::ModelParams sgd = nn::ModelParams::init(cfg, 5);
  nn::ModelParams adam = nn::ModelParams::init(cfg, 5);
  nn::AdamState state;
  double sgd_loss = 0, adam_loss = 0;
  for (int it = 0; it < 20; ++it) {
    sgd_loss = nn::reference_train_step(sgd, batch).mean_loss;
    adam_loss = nn::reference_train_step_adam(adam, batch, state).mean_loss;
  }
  EXPECT_LT(adam_loss, sgd_loss) << "Adam at lr=0.01 should outpace SGD";
}

}  // namespace
}  // namespace helix::runtime
