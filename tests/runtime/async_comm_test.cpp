// The asynchronous comm engine preserves the numerical and program-order
// contracts of the blocking interpreter:
//  * for every recv-lookahead window — 0, 1, 4, unbounded — training is
//    bit-identical to the sequential reference (losses AND parameters),
//    across schedule families;
//  * a traced async run still reconciles against the simulator with
//    order_matches_ir on every stage: prefetching never reorders the
//    compute-op sequence the validator's per-micro-batch program-order
//    invariant is defined over;
//  * the engine is actually engaged (isend/irecv counters advance) and keeps
//    the one-span-per-op accounting intact;
//  * tracing an async run does not perturb its numerics.
#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/validator.h"
#include "nn/reference.h"
#include "obs/export.h"
#include "runtime/trainer.h"
#include "sim/simulator.h"

namespace helix::runtime {
namespace {

nn::MiniGptConfig tiny_config(int layers = 4, int micro_batches = 4) {
  return {.layers = layers, .hidden = 16, .heads = 2, .seq = 8, .batch = 1,
          .vocab = 32, .micro_batches = micro_batches, .lr = 0.05f};
}

struct WindowCase {
  std::string name;
  ScheduleFamily family;
  int p;
  int layers;
  int micro_batches;
  int lookahead;
};

class AsyncLookahead : public ::testing::TestWithParam<WindowCase> {};

TEST_P(AsyncLookahead, BitIdenticalToSequentialReference) {
  const WindowCase c = GetParam();
  const nn::MiniGptConfig cfg = tiny_config(c.layers, c.micro_batches);
  const nn::Batch batch = nn::Batch::random(cfg, 1234);
  nn::ModelParams reference = nn::ModelParams::init(cfg, 42);
  nn::ModelParams piped = nn::ModelParams::init(cfg, 42);
  Trainer trainer(piped, {.family = c.family,
                          .pipeline_stages = c.p,
                          .async_comm = true,
                          .comm_lookahead = c.lookahead});
  const auto validation = core::validate_semantics(trainer.schedule());
  for (const auto& e : validation.errors) ADD_FAILURE() << e;
  for (int iter = 0; iter < 3; ++iter) {
    const nn::StepResult ref = nn::reference_train_step(reference, batch);
    const IterationMetrics got = trainer.train_step(batch);
    ASSERT_EQ(got.micro_batch_losses.size(), ref.micro_batch_losses.size());
    for (std::size_t mb = 0; mb < ref.micro_batch_losses.size(); ++mb) {
      EXPECT_EQ(got.micro_batch_losses[mb], ref.micro_batch_losses[mb])
          << "iter " << iter << " mb " << mb;
    }
    EXPECT_EQ(piped.max_diff(reference), 0.0) << "after iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Windows, AsyncLookahead,
    ::testing::Values(
        WindowCase{"helix_w0", ScheduleFamily::kHelixTwoFold, 2, 4, 4, 0},
        WindowCase{"helix_w1", ScheduleFamily::kHelixTwoFold, 2, 4, 4, 1},
        WindowCase{"helix_w4", ScheduleFamily::kHelixTwoFold, 2, 4, 4, 4},
        WindowCase{"helix_unbounded", ScheduleFamily::kHelixTwoFold, 2, 4, 4,
                   kUnboundedLookahead},
        WindowCase{"helix_p4_unbounded", ScheduleFamily::kHelixTwoFold, 4, 8, 8,
                   kUnboundedLookahead},
        WindowCase{"onef1b_w0", ScheduleFamily::k1F1B, 2, 4, 4, 0},
        WindowCase{"onef1b_unbounded", ScheduleFamily::k1F1B, 2, 4, 4,
                   kUnboundedLookahead},
        WindowCase{"zb1p_w1", ScheduleFamily::kZb1p, 2, 4, 4, 1},
        WindowCase{"zb1p_unbounded", ScheduleFamily::kZb1p, 2, 4, 4,
                   kUnboundedLookahead},
        WindowCase{"gpipe_w4", ScheduleFamily::kGPipe, 2, 4, 4, 4}),
    [](const auto& info) { return info.param.name; });

struct AsyncTracedRun {
  core::Schedule sched;
  obs::TraceCollector trace{2};
  IterationMetrics metrics;
};

AsyncTracedRun run_async_traced(ScheduleFamily family, int lookahead) {
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 7);
  nn::ModelParams params = nn::ModelParams::init(cfg, 11);
  AsyncTracedRun out;
  Trainer trainer(params, {.family = family,
                           .pipeline_stages = 2,
                           .async_comm = true,
                           .comm_lookahead = lookahead,
                           .trace = &out.trace});
  out.sched = trainer.schedule();
  out.metrics = trainer.train_step(batch);
  return out;
}

TEST(AsyncComm, PrefetchPreservesProgramOrderInvariant) {
  // The validator's per-micro-batch program-order invariant is over compute
  // ops; reconcile() checks the measured compute sequence against the IR
  // program for every stage. Prefetched recvs (and eagerly posted sends)
  // must leave that order untouched for any window.
  for (const int w : {0, 1, 4, kUnboundedLookahead}) {
    const AsyncTracedRun run =
        run_async_traced(ScheduleFamily::kHelixTwoFold, w);
    const core::UnitCostModel cost;
    const sim::SimResult predicted = sim::Simulator(cost).run(run.sched);
    const obs::ReconciliationReport report =
        obs::reconcile(run.sched, predicted, run.trace);
    EXPECT_TRUE(report.all_orders_match_ir()) << "lookahead " << w;
    for (const obs::StageReconciliation& s : report.stages) {
      EXPECT_TRUE(s.order_matches_ir) << "stage " << s.stage << " w " << w;
      EXPECT_DOUBLE_EQ(s.order_rank_correlation, 1.0);
      // The report prices comm overlap in both worlds; fractions are sane.
      EXPECT_GE(s.predicted_overlap_frac, 0.0);
      EXPECT_LE(s.predicted_overlap_frac, 1.0);
      EXPECT_GE(s.measured_overlap_frac, 0.0);
      EXPECT_LE(s.measured_overlap_frac, 1.0);
    }
  }
}

TEST(AsyncComm, EngineIsEngagedAndAccountingStaysOnePerOp) {
  const AsyncTracedRun run =
      run_async_traced(ScheduleFamily::kHelixTwoFold, kUnboundedLookahead);
  for (int r = 0; r < 2; ++r) {
    const auto& program = run.sched.stage_ops[static_cast<std::size_t>(r)];
    // The async paths really ran: sends through the comm worker, recvs as
    // posted handles.
    EXPECT_GT(run.trace.comm(r).isend_posted.value, 0) << "rank " << r;
    EXPECT_GT(run.trace.comm(r).irecv_posted.value, 0) << "rank " << r;
    // Exactly one span and one ops_executed tick per IR op, comm included.
    EXPECT_EQ(run.trace.recorder(r).spans().size(), program.size());
    EXPECT_EQ(run.trace.runtime(r).ops_executed.value,
              static_cast<std::int64_t>(program.size()));
    // Exposed + hidden is a partition: both are non-negative, and every
    // blocked nanosecond is in exactly one bucket.
    EXPECT_GE(run.trace.comm(r).recv_wait_exposed_ns.value, 0);
    EXPECT_GE(run.trace.comm(r).recv_wait_hidden_ns.value, 0);
  }
}

TEST(AsyncComm, TracingIsNumericallyInvisible) {
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 7);
  nn::ModelParams plain = nn::ModelParams::init(cfg, 11);
  nn::ModelParams traced = nn::ModelParams::init(cfg, 11);
  obs::TraceCollector trace(2);
  Trainer plain_trainer(plain, {.family = ScheduleFamily::kHelixTwoFold,
                                .pipeline_stages = 2,
                                .async_comm = true});
  Trainer traced_trainer(traced, {.family = ScheduleFamily::kHelixTwoFold,
                                  .pipeline_stages = 2,
                                  .async_comm = true,
                                  .trace = &trace});
  for (int iter = 0; iter < 2; ++iter) {
    const IterationMetrics a = plain_trainer.train_step(batch);
    const IterationMetrics b = traced_trainer.train_step(batch);
    ASSERT_EQ(a.micro_batch_losses.size(), b.micro_batch_losses.size());
    for (std::size_t mb = 0; mb < a.micro_batch_losses.size(); ++mb) {
      EXPECT_EQ(a.micro_batch_losses[mb], b.micro_batch_losses[mb]);
    }
    EXPECT_EQ(plain.max_diff(traced), 0.0) << "after iter " << iter;
  }
}

TEST(AsyncComm, NegativeWindowsAllMeanUnbounded) {
  // Any negative value is the unbounded sentinel, not an off-by-one door.
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 3);
  nn::ModelParams a = nn::ModelParams::init(cfg, 5);
  nn::ModelParams b = nn::ModelParams::init(cfg, 5);
  Trainer ta(a, {.family = ScheduleFamily::kHelixTwoFold,
                 .pipeline_stages = 2,
                 .async_comm = true,
                 .comm_lookahead = kUnboundedLookahead});
  Trainer tb(b, {.family = ScheduleFamily::kHelixTwoFold,
                 .pipeline_stages = 2,
                 .async_comm = true,
                 .comm_lookahead = -7});
  (void)ta.train_step(batch);
  (void)tb.train_step(batch);
  EXPECT_EQ(a.max_diff(b), 0.0);
}

}  // namespace
}  // namespace helix::runtime
