// The runtime observability layer, tested on real traced executions:
//  * the Chrome trace export of a threaded run is valid JSON with the
//    simulator exporter's field layout, one event per executed op;
//  * per-rank spans are serially ordered and reproduce the stage's IR
//    program (ops, order, identity) — the measured side of the "sim and
//    runtime execute the same schedule IR" claim, for both HelixPipe
//    two-fold and 1F1B;
//  * recv blocked-wait accounting is consistent: the comm layer's per-rank
//    total equals the sum of per-op waits attributed to Recv spans;
//  * instrumentation never perturbs numerics: losses and parameters are
//    bit-identical with tracing on and off.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/cost.h"
#include "nn/reference.h"
#include "obs/export.h"
#include "runtime/trainer.h"
#include "sim/simulator.h"

namespace helix::runtime {
namespace {

// HELIX_COMM_ASYNC reroutes every Trainer through the asynchronous comm
// engine (see TrainerOptions::async_comm). Numerics and op *multisets* are
// identical, but blocking-only trace invariants — comm spans sitting at
// their program positions, waits attributed only to Recv spans, messages
// always touching the mailbox queue — intentionally do not hold, so the
// affected assertions below switch to their async-safe forms.
bool async_comm_forced() {
  const char* e = std::getenv("HELIX_COMM_ASYNC");
  return e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
}

nn::MiniGptConfig tiny_config() {
  return {.layers = 4, .hidden = 16, .heads = 2, .seq = 8, .batch = 1,
          .vocab = 32, .micro_batches = 4, .lr = 0.05f};
}

struct TracedRun {
  core::Schedule sched;
  obs::TraceCollector trace{2};
  IterationMetrics metrics;
};

std::size_t run_span_count(const obs::TraceCollector& trace) {
  std::size_t n = 0;
  for (int r = 0; r < trace.num_ranks(); ++r) n += trace.recorder(r).spans().size();
  return n;
}

TracedRun run_traced(ScheduleFamily family, int stages) {
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 7);
  nn::ModelParams params = nn::ModelParams::init(cfg, 11);
  TracedRun out{{}, obs::TraceCollector(stages), {}};
  Trainer trainer(params, {.family = family,
                           .pipeline_stages = stages,
                           .trace = &out.trace});
  out.sched = trainer.schedule();
  out.metrics = trainer.train_step(batch);
  return out;
}

TEST(RuntimeTrace, ChromeTraceParsesWithOneEventPerOp) {
  const TracedRun run = run_traced(ScheduleFamily::kHelixTwoFold, 2);
  const std::string json = obs::to_chrome_trace(run.trace);
  const std::vector<obs::ParsedEvent> events = obs::parse_chrome_trace(json);
  ASSERT_EQ(events.size(), run.sched.total_ops());
  for (const obs::ParsedEvent& e : events) {
    ASSERT_EQ(e.size(), 6u);
    EXPECT_TRUE(e.count("name"));
    EXPECT_EQ(e.at("ph"), "X");
    const int pid = std::stoi(e.at("pid"));
    EXPECT_GE(pid, 0);
    EXPECT_LT(pid, run.sched.num_stages);
    const int tid = std::stoi(e.at("tid"));
    EXPECT_TRUE(tid == sim::kChromeComputeTid || tid == sim::kChromeCommTid);
    EXPECT_GE(std::stod(e.at("ts")), 0.0);
    EXPECT_GE(std::stod(e.at("dur")), 0.0);
  }
}

TEST(RuntimeTrace, ParserRejectsMalformedJson) {
  EXPECT_THROW(obs::parse_chrome_trace("{"), std::runtime_error);
  EXPECT_THROW(obs::parse_chrome_trace("[{\"a\":}]"), std::runtime_error);
  EXPECT_THROW(obs::parse_chrome_trace("[{\"a\":1}] trailing"), std::runtime_error);
  EXPECT_TRUE(obs::parse_chrome_trace("[]").empty());
}

TEST(RuntimeTrace, SpansAreSeriallyOrderedPerRank) {
  const bool async = async_comm_forced();
  const TracedRun run = run_traced(ScheduleFamily::kHelixTwoFold, 2);
  for (int r = 0; r < run.trace.num_ranks(); ++r) {
    const auto& spans = run.trace.recorder(r).spans();
    const auto& program = run.sched.stage_ops[static_cast<std::size_t>(r)];
    ASSERT_EQ(spans.size(), program.size()) << "rank " << r;
    std::size_t next_compute = 0;  ///< program cursor over compute ops only
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_LE(spans[i].start_ns, spans[i].end_ns);
      // One thread per rank executes serially: spans never overlap or go
      // backwards, and every span carries the rank's thread id. (The async
      // engine posts comm ops from the compute thread too — only delivery
      // happens on the worker — so this holds in both modes.)
      if (i > 0) {
        EXPECT_GE(spans[i].start_ns, spans[i - 1].end_ns);
      }
      EXPECT_EQ(spans[i].tid, spans[0].tid);
      EXPECT_EQ(spans[i].stage, r);
      if (!async) {
        // Blocking engine: the recorded op identity is the IR program's,
        // position by position.
        EXPECT_EQ(spans[i].kind, program[i].kind) << "rank " << r << " op " << i;
        EXPECT_EQ(spans[i].mb, program[i].mb);
        EXPECT_EQ(spans[i].layer, program[i].layer);
      } else if (core::is_compute(spans[i].kind)) {
        // Async engine: comm ops move to their post positions, but compute
        // ops still execute in exact IR program order.
        while (next_compute < program.size() &&
               !core::is_compute(program[next_compute].kind)) {
          ++next_compute;
        }
        ASSERT_LT(next_compute, program.size()) << "rank " << r;
        EXPECT_EQ(spans[i].kind, program[next_compute].kind)
            << "rank " << r << " span " << i;
        EXPECT_EQ(spans[i].mb, program[next_compute].mb);
        EXPECT_EQ(spans[i].layer, program[next_compute].layer);
        ++next_compute;
      }
    }
  }
}

TEST(RuntimeTrace, RecvWaitTotalEqualsSumOfPerOpWaits) {
  const bool async = async_comm_forced();
  const TracedRun run = run_traced(ScheduleFamily::kHelixTwoFold, 2);
  for (int r = 0; r < run.trace.num_ranks(); ++r) {
    std::int64_t span_wait = 0;
    for (const obs::Span& s : run.trace.recorder(r).spans()) {
      if (s.kind == core::OpKind::kRecv || (async && core::is_compute(s.kind))) {
        // Async engine: a prefetched recv is drained inside the compute op
        // that consumes it, so exposed wait lands on that compute span.
        EXPECT_LE(s.wait_ns, s.duration_ns());
        span_wait += s.wait_ns;
      } else {
        // Only Recv ops (or, async, their consuming compute ops) can block.
        EXPECT_EQ(s.wait_ns, 0) << core::to_string(s.kind);
      }
    }
    EXPECT_EQ(span_wait, run.trace.comm(r).recv_wait_exposed_ns.value)
        << "rank " << r;
    if (!async) {
      // Blocking engine: nothing is prefetched, so no wait can be hidden.
      EXPECT_EQ(run.trace.comm(r).recv_wait_hidden_ns.value, 0) << "rank " << r;
    }
  }
}

class MeasuredOrder : public ::testing::TestWithParam<ScheduleFamily> {};

TEST_P(MeasuredOrder, MatchesSimulatorAndIrProgramOrder) {
  const TracedRun run = run_traced(GetParam(), 2);
  const core::UnitCostModel cost;
  const sim::SimResult predicted = sim::Simulator(cost).run(run.sched);
  const obs::ReconciliationReport report =
      obs::reconcile(run.sched, predicted, run.trace);
  ASSERT_EQ(report.stages.size(), 2u);
  for (const obs::StageReconciliation& s : report.stages) {
    EXPECT_TRUE(s.order_matches_ir) << "stage " << s.stage;
    EXPECT_DOUBLE_EQ(s.order_rank_correlation, 1.0);
    EXPECT_GT(s.compute_ops, 0);
    EXPECT_GT(s.measured_busy_frac, 0.0);
    EXPECT_LE(s.measured_busy_frac, 1.0);
    EXPECT_NEAR(s.measured_busy_frac + s.measured_bubble_frac, 1.0, 1e-9);
  }
  EXPECT_TRUE(report.all_orders_match_ir());
  EXPECT_GT(report.measured_makespan_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Families, MeasuredOrder,
                         ::testing::Values(ScheduleFamily::kHelixTwoFold,
                                           ScheduleFamily::k1F1B),
                         [](const auto& info) {
                           return info.param == ScheduleFamily::kHelixTwoFold
                                      ? "helix_two_fold"
                                      : "onef1b";
                         });

TEST(RuntimeTrace, RankSummariesCoverEveryRank) {
  const TracedRun run = run_traced(ScheduleFamily::kHelixTwoFold, 2);
  ASSERT_EQ(run.metrics.rank_summaries.size(), 2u);
  for (int r = 0; r < 2; ++r) {
    const obs::RankSummary& s = run.metrics.rank_summaries[static_cast<std::size_t>(r)];
    EXPECT_EQ(s.rank, r);
    EXPECT_EQ(s.ops_executed,
              static_cast<std::int64_t>(
                  run.sched.stage_ops[static_cast<std::size_t>(r)].size()));
    EXPECT_GT(s.busy_ns, 0);
    EXPECT_GT(s.bytes_sent, 0);
    EXPECT_GT(s.bytes_received, 0);
    EXPECT_GT(s.live_peak_bytes, 0);
    // Mailbox depth only rises when a message arrives before its receive is
    // posted. Either engine can legally keep the queue empty for the whole
    // run — the blocking engine too, when the receiver's thread happens to
    // post each recv before the sender delivers (World::deliver fulfills a
    // pending recv directly, bypassing the queue; a scheduling race seen
    // under parallel ctest load) — so no minimum depth can be asserted.
    EXPECT_GE(s.mailbox_depth_peak, 0);
  }
  // The pipeline moves the same bytes out as in overall (p2p only).
  EXPECT_EQ(run.metrics.rank_summaries[0].bytes_sent +
                run.metrics.rank_summaries[1].bytes_sent,
            run.metrics.rank_summaries[0].bytes_received +
                run.metrics.rank_summaries[1].bytes_received);
}

TEST(RuntimeTrace, CollectorResetsBetweenIterations) {
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 7);
  nn::ModelParams params = nn::ModelParams::init(cfg, 11);
  obs::TraceCollector trace(2);
  Trainer trainer(params, {.family = ScheduleFamily::kHelixTwoFold,
                           .pipeline_stages = 2,
                           .trace = &trace});
  (void)trainer.train_step(batch);
  const std::size_t ops_once = run_span_count(trace);
  (void)trainer.train_step(batch);
  EXPECT_EQ(run_span_count(trace), ops_once);  // not accumulated across steps
}

TEST(RuntimeTrace, RejectsCollectorWithWrongShardCount) {
  const nn::MiniGptConfig cfg = tiny_config();
  nn::ModelParams params = nn::ModelParams::init(cfg, 11);
  obs::TraceCollector trace(3);
  EXPECT_THROW(Trainer(params, {.family = ScheduleFamily::kHelixTwoFold,
                                .pipeline_stages = 2,
                                .trace = &trace}),
               std::invalid_argument);
}

TEST(RuntimeTrace, TracingIsNumericallyInvisible) {
  const nn::MiniGptConfig cfg = tiny_config();
  const nn::Batch batch = nn::Batch::random(cfg, 7);
  nn::ModelParams plain = nn::ModelParams::init(cfg, 11);
  nn::ModelParams traced = nn::ModelParams::init(cfg, 11);
  obs::TraceCollector trace(2);
  Trainer plain_trainer(plain, {.family = ScheduleFamily::kHelixTwoFold,
                                .pipeline_stages = 2});
  Trainer traced_trainer(traced, {.family = ScheduleFamily::kHelixTwoFold,
                                  .pipeline_stages = 2,
                                  .trace = &trace});
  for (int iter = 0; iter < 2; ++iter) {
    const IterationMetrics a = plain_trainer.train_step(batch);
    const IterationMetrics b = traced_trainer.train_step(batch);
    ASSERT_EQ(a.micro_batch_losses.size(), b.micro_batch_losses.size());
    for (std::size_t mb = 0; mb < a.micro_batch_losses.size(); ++mb) {
      EXPECT_EQ(a.micro_batch_losses[mb], b.micro_batch_losses[mb]);
    }
    EXPECT_EQ(plain.max_diff(traced), 0.0) << "after iter " << iter;
  }
}

}  // namespace
}  // namespace helix::runtime
