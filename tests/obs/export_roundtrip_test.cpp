// Chrome-trace exporter round trip: a real traced training run (spans plus
// allocator counter tracks) must export as JSON that the strict parser
// accepts, with complete span events and monotonic timestamps within every
// (pid, tid) lane.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "nn/model.h"
#include "obs/export.h"
#include "obs/recorder.h"
#include "runtime/trainer.h"

namespace helix {
namespace {

/// One traced + memory-tracked training iteration of the numeric mini-GPT
/// pipeline, the same setup every figure bench uses.
obs::TraceCollector traced_iteration(int stages) {
  const nn::MiniGptConfig cfg{.layers = stages, .hidden = 32, .heads = 4,
                              .seq = 32, .batch = 1, .vocab = 64,
                              .micro_batches = 2 * stages, .lr = 0.03f};
  const nn::Batch batch = nn::Batch::random(cfg, 11);
  nn::ModelParams params = nn::ModelParams::init(cfg, 3);
  obs::TraceCollector trace(stages);
  runtime::Trainer trainer(params, {.family = runtime::ScheduleFamily::k1F1B,
                                    .pipeline_stages = stages,
                                    .trace = &trace, .track_memory = true});
  (void)trainer.train_step(batch);
  return trace;
}

double field_as_double(const obs::ParsedEvent& ev, const std::string& key) {
  const auto it = ev.find(key);
  EXPECT_NE(it, ev.end()) << "missing field " << key;
  return it == ev.end() ? 0.0 : std::atof(it->second.c_str());
}

TEST(ExportRoundTrip, SpansAndCounterTracksParseBack) {
  const int stages = 2;
  const obs::TraceCollector trace = traced_iteration(stages);
  const std::string json = to_chrome_trace(trace);

  // Strict parse: throws on any malformed event object.
  const std::vector<obs::ParsedEvent> events = obs::parse_chrome_trace(json);
  ASSERT_FALSE(events.empty());

  std::size_t spans = 0;
  std::size_t counters = 0;
  for (const obs::ParsedEvent& ev : events) {
    const auto ph = ev.find("ph");
    ASSERT_NE(ph, ev.end());
    if (ph->second == "X") {
      ++spans;
      EXPECT_NE(ev.find("name"), ev.end());
      EXPECT_NE(ev.find("pid"), ev.end());
      EXPECT_NE(ev.find("tid"), ev.end());
      EXPECT_GE(field_as_double(ev, "dur"), 0.0);
    } else if (ph->second == "C") {
      ++counters;
      EXPECT_NE(ev.find("name"), ev.end());
      // Counter series are flattened as args.<series> by the parser.
      bool has_series = false;
      for (const auto& [k, v] : ev) {
        if (k.rfind("args.", 0) == 0) has_series = true;
      }
      EXPECT_TRUE(has_series);
    }
  }
  // Every op of every rank produced a span; memory tracking produced the
  // "mem bytes" / "mem fragmentation" counter tracks.
  std::size_t total_ops = 0;
  for (int r = 0; r < trace.num_ranks(); ++r) {
    total_ops += trace.recorder(r).spans().size();
  }
  EXPECT_EQ(spans, total_ops);
  EXPECT_GT(counters, 0u);
}

TEST(ExportRoundTrip, TimestampsMonotonicPerLane) {
  const obs::TraceCollector trace = traced_iteration(2);
  const std::vector<obs::ParsedEvent> events =
      obs::parse_chrome_trace(to_chrome_trace(trace));

  // Span starts within one (pid, tid) lane must be non-decreasing (each rank
  // thread records its stream in execution order), and no timestamp may
  // precede the collector's epoch (ts >= 0).
  std::map<std::pair<std::string, std::string>, double> last_ts;
  for (const obs::ParsedEvent& ev : events) {
    const double ts = field_as_double(ev, "ts");
    EXPECT_GE(ts, 0.0);
    if (ev.at("ph") != "X") continue;
    const auto key = std::make_pair(ev.at("pid"), ev.at("tid"));
    const auto it = last_ts.find(key);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "lane (" << key.first << ", " << key.second
                                << ") went backwards";
    }
    last_ts[key] = ts;
  }
  EXPECT_FALSE(last_ts.empty());
}

TEST(ExportRoundTrip, SpanOnlyExportOmitsCounters) {
  const nn::MiniGptConfig cfg{.layers = 2, .hidden = 32, .heads = 4,
                              .seq = 32, .batch = 1, .vocab = 64,
                              .micro_batches = 4, .lr = 0.03f};
  const nn::Batch batch = nn::Batch::random(cfg, 11);
  nn::ModelParams params = nn::ModelParams::init(cfg, 3);
  obs::TraceCollector trace(2);
  runtime::Trainer trainer(params, {.family = runtime::ScheduleFamily::k1F1B,
                                    .pipeline_stages = 2, .trace = &trace});
  (void)trainer.train_step(batch);

  for (const obs::ParsedEvent& ev : obs::parse_chrome_trace(to_chrome_trace(trace))) {
    EXPECT_NE(ev.at("ph"), "C") << "counter event without memory tracking";
  }
}

}  // namespace
}  // namespace helix
