// Profiling registry (obs/prof.h): detachment no-op contract, per-phase
// aggregation, multi-thread shard merging, and the bit-identity guarantee —
// training with the registry attached produces bitwise-equal weights to a
// detached run, and the simulator's exact-reserve invariant (zero mid-run
// memory-event reallocations) is surfaced through a counter.
#include <gtest/gtest.h>

#include <thread>

#include "core/cost.h"
#include "nn/model.h"
#include "obs/prof.h"
#include "runtime/trainer.h"
#include "schedules/layerwise.h"
#include "sim/simulator.h"

namespace helix {
namespace {

using obs::prof::Registry;
using obs::prof::SiteKind;

TEST(Prof, DetachedRecordsNothing) {
  obs::prof::detach();
  {
    HELIX_PROF_SCOPE("prof_test.detached_scope");
    HELIX_PROF_COUNT("prof_test.detached_count", 42);
  }
  Registry reg;
  obs::prof::AttachGuard guard(reg);
  const auto report = reg.report();
  EXPECT_EQ(report.find("", "prof_test.detached_scope"), nullptr);
  EXPECT_EQ(report.counter_total("prof_test.detached_count"), 0);
}

TEST(Prof, TimersAggregateCountAndTotal) {
  Registry reg;
  obs::prof::AttachGuard guard(reg);
  for (int i = 0; i < 5; ++i) {
    HELIX_PROF_SCOPE("prof_test.loop_scope");
  }
  const auto report = reg.report();
  const auto* stats = report.find("", "prof_test.loop_scope");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 5);
  EXPECT_GE(stats->total_ns, 0);
  EXPECT_GE(stats->max_ns, 0);
  EXPECT_LE(stats->max_ns, stats->total_ns);
}

TEST(Prof, CountersSumAddends) {
  Registry reg;
  obs::prof::AttachGuard guard(reg);
  HELIX_PROF_COUNT("prof_test.counter", 10);
  HELIX_PROF_COUNT("prof_test.counter", 32);
  const auto report = reg.report();
  EXPECT_EQ(report.counter_total("prof_test.counter"), 42);
  const auto* stats = report.find("", "prof_test.counter");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, 2);
}

TEST(Prof, PhasesSplitAggregates) {
  Registry reg;
  obs::prof::AttachGuard guard(reg);
  reg.set_phase("alpha");
  HELIX_PROF_COUNT("prof_test.phased", 1);
  reg.set_phase("beta");
  HELIX_PROF_COUNT("prof_test.phased", 2);
  HELIX_PROF_COUNT("prof_test.phased", 3);
  const auto report = reg.report();
  const auto* a = report.find("alpha", "prof_test.phased");
  const auto* b = report.find("beta", "prof_test.phased");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(b->value, 5);
  EXPECT_EQ(report.counter_total("prof_test.phased"), 6);
}

TEST(Prof, ShardsMergeAcrossThreads) {
  Registry reg;
  obs::prof::AttachGuard guard(reg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) {
        HELIX_PROF_COUNT("prof_test.threaded", 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Quiescent point: all recording threads joined.
  EXPECT_EQ(reg.report().counter_total("prof_test.threaded"), 400);
}

TEST(Prof, ResetDropsDataButKeepsRecording) {
  Registry reg;
  obs::prof::AttachGuard guard(reg);
  HELIX_PROF_COUNT("prof_test.reset", 7);
  reg.reset();
  EXPECT_EQ(reg.report().counter_total("prof_test.reset"), 0);
  HELIX_PROF_COUNT("prof_test.reset", 8);
  EXPECT_EQ(reg.report().counter_total("prof_test.reset"), 8);
}

TEST(Prof, SecondRegistryStartsEmpty) {
  {
    Registry first;
    obs::prof::AttachGuard guard(first);
    HELIX_PROF_COUNT("prof_test.stale", 1);
  }
  Registry second;
  obs::prof::AttachGuard guard(second);
  // The thread-local shard cache of `first` must not leak into `second`.
  EXPECT_EQ(second.report().counter_total("prof_test.stale"), 0);
  HELIX_PROF_COUNT("prof_test.stale", 2);
  EXPECT_EQ(second.report().counter_total("prof_test.stale"), 2);
}

TEST(Prof, InternRejectsKindMismatch) {
  (void)obs::prof::intern("prof_test.kind", SiteKind::kTimer);
  EXPECT_EQ(obs::prof::intern("prof_test.kind", SiteKind::kTimer),
            obs::prof::intern("prof_test.kind", SiteKind::kTimer));
  EXPECT_THROW((void)obs::prof::intern("prof_test.kind", SiteKind::kCounter),
               std::logic_error);
}

TEST(Prof, RenderListsEveryRow) {
  Registry reg;
  obs::prof::AttachGuard guard(reg);
  reg.set_phase("render");
  HELIX_PROF_COUNT("prof_test.render_counter", 3);
  {
    HELIX_PROF_SCOPE("prof_test.render_timer");
  }
  const std::string table = obs::prof::render(reg.report());
  EXPECT_NE(table.find("prof_test.render_counter"), std::string::npos);
  EXPECT_NE(table.find("prof_test.render_timer"), std::string::npos);
  EXPECT_NE(table.find("render"), std::string::npos);
}

TEST(Prof, SimulatorReservesMemoryEventsExactly) {
  Registry reg;
  obs::prof::AttachGuard guard(reg);
  core::PipelineProblem pr;
  pr.p = 4;
  pr.m = 8;
  pr.L = 8;
  pr.comm.boundary = 1;
  pr.comm.pre_to_attn = 1;
  pr.comm.attn_to_post = 1;
  pr.include_lm_head = false;
  // Nonzero activation bytes so the run emits memory events at all.
  pr.act.pre = 2;
  pr.act.attn = 3;
  pr.act.post = 11;
  pr.act.attn_recompute = 2;
  pr.act.post_recompute = 2;
  const core::UnitCostModel cost;
  (void)sim::Simulator(cost).run(schedules::build_1f1b(pr));
  const auto report = reg.report();
  // The counting pass sized every per-stage vector exactly: appends happened,
  // reallocations did not.
  EXPECT_GT(report.counter_total("sim.mem_events.appended"), 0);
  EXPECT_EQ(report.counter_total("sim.mem_events.reallocs"), 0);
}

/// The registry must never perturb numerics: training with profiling
/// attached yields bitwise-identical weights and losses to a detached run.
TEST(Prof, TrainingIsBitIdenticalAttachedOrDetached) {
  const nn::MiniGptConfig cfg{.layers = 2, .hidden = 32, .heads = 4,
                              .seq = 32, .batch = 1, .vocab = 64,
                              .micro_batches = 4, .lr = 0.03f};
  const nn::Batch batch = nn::Batch::random(cfg, 11);

  const auto train = [&](nn::ModelParams& params) {
    runtime::Trainer trainer(params, {.family = runtime::ScheduleFamily::k1F1B,
                                      .pipeline_stages = 2});
    std::vector<double> losses;
    for (int s = 0; s < 2; ++s) {
      for (const double l : trainer.train_step(batch).micro_batch_losses) {
        losses.push_back(l);
      }
    }
    return losses;
  };

  obs::prof::detach();
  nn::ModelParams detached = nn::ModelParams::init(cfg, 3);
  const std::vector<double> detached_losses = train(detached);

  nn::ModelParams attached = nn::ModelParams::init(cfg, 3);
  std::vector<double> attached_losses;
  {
    Registry reg;
    obs::prof::AttachGuard guard(reg);
    attached_losses = train(attached);
    // The instrumented run actually recorded something (the interpreter's
    // dispatch sites fired), so the comparison is not vacuous.
    EXPECT_GT(reg.report().counter_total("runtime.ops"), 0);
  }

  EXPECT_EQ(attached.max_diff(detached), 0.0);
  ASSERT_EQ(attached_losses.size(), detached_losses.size());
  for (std::size_t i = 0; i < attached_losses.size(); ++i) {
    EXPECT_EQ(attached_losses[i], detached_losses[i]) << "loss " << i;
  }
}

}  // namespace
}  // namespace helix
