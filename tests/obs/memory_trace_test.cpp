// Memory observability on real traced executions (obs/memory.h + the memory
// section of obs/export.h):
//  * opt-in per-rank memory tracking produces tagged allocator event streams
//    whose measured peak brackets the interpreter's exact live-byte gauge;
//  * peak attribution decomposes the measured peak into "whose bytes";
//  * the Chrome trace gains per-rank counter tracks when tracking is on and
//    is unchanged (span events only) when it is off;
//  * tracking never perturbs numerics (bit-identical losses and parameters);
//  * the reconciliation report's memory section reproduces the Figure 4
//    cross-stage 1F1B imbalance: measured allocator peaks match the
//    closed-form model prediction within tolerance and in ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cost.h"
#include "nn/reference.h"
#include "obs/export.h"
#include "obs/memory.h"
#include "runtime/trainer.h"
#include "sim/simulator.h"

namespace helix::runtime {
namespace {

/// Large enough that allocator rounding (512 B granularity) is small against
/// every stash, small enough that a 4-stage run stays fast.
nn::MiniGptConfig mem_config(int stages) {
  return {.layers = stages, .hidden = 32, .heads = 4, .seq = 64, .batch = 1,
          .vocab = 64, .micro_batches = 2 * stages, .lr = 0.03f};
}

struct MemRun {
  core::Schedule sched;
  obs::TraceCollector trace{2};
  IterationMetrics metrics;
};

MemRun run_tracked(ScheduleFamily family, int stages, bool track_memory) {
  const nn::MiniGptConfig cfg = mem_config(stages);
  const nn::Batch batch = nn::Batch::random(cfg, 7);
  nn::ModelParams params = nn::ModelParams::init(cfg, 11);
  MemRun out{{}, obs::TraceCollector(stages), {}};
  Trainer trainer(params, {.family = family,
                           .pipeline_stages = stages,
                           .trace = &out.trace,
                           .track_memory = track_memory});
  out.sched = trainer.schedule();
  out.metrics = trainer.train_step(batch);
  return out;
}

TEST(MemoryTrace, TrackersRecordTaggedEventsAndBracketLiveGauge) {
  const MemRun run = run_tracked(ScheduleFamily::k1F1B, 4, true);
  ASSERT_TRUE(run.trace.memory_enabled());
  for (int r = 0; r < run.trace.num_ranks(); ++r) {
    const obs::MemoryTracker* t = run.trace.memory(r);
    ASSERT_NE(t, nullptr) << "rank " << r;
    ASSERT_FALSE(t->events().empty());
    std::int64_t prev_ts = 0;
    for (const obs::MemoryEvent& me : t->events()) {
      EXPECT_TRUE(me.tag.valid) << "every event happens inside an op";
      EXPECT_GE(me.tag.mb, 0);
      EXPECT_GE(me.t_ns, prev_ts) << "event timestamps are monotone";
      prev_ts = me.t_ns;
    }
    // The allocator peak is the rounded version of the interpreter's exact
    // live-byte high water: never below it, and within rounding slack above.
    const std::int64_t exact_peak =
        run.metrics.rank_summaries[static_cast<std::size_t>(r)].live_peak_bytes;
    ASSERT_GT(exact_peak, 0);
    EXPECT_GE(t->peak_allocated(), exact_peak);
    EXPECT_LT(t->peak_allocated(), 2 * exact_peak)
        << "rounding slack should stay far below the tracked bytes";
    // The iteration drains: every slot is consumed and every stash freed, so
    // the shadow allocator must end empty.
    EXPECT_EQ(t->allocator().stats().allocated_bytes, 0) << "rank " << r;
  }
}

TEST(MemoryTrace, PeakAttributionDecomposesThePeak) {
  const MemRun run = run_tracked(ScheduleFamily::kHelixTwoFold, 2, true);
  for (int r = 0; r < run.trace.num_ranks(); ++r) {
    const obs::MemoryTracker* t = run.trace.memory(r);
    ASSERT_NE(t, nullptr);
    const std::vector<obs::AttributionRow> rows = t->peak_attribution();
    ASSERT_FALSE(rows.empty());
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_GT(rows[i].bytes, 0);
      if (i > 0) EXPECT_LE(rows[i].bytes, rows[i - 1].bytes) << "sorted desc";
      sum += rows[i].bytes;
    }
    EXPECT_EQ(sum, t->peak_allocated())
        << "attribution rows partition the peak exactly";
  }
  const std::string table = obs::render_memory_attribution(run.trace);
  EXPECT_NE(table.find("rank 0 peak attribution"), std::string::npos);
  EXPECT_NE(table.find("rank 1 peak attribution"), std::string::npos);
}

TEST(MemoryTrace, ChromeTraceGainsCounterTracks) {
  const MemRun run = run_tracked(ScheduleFamily::kHelixTwoFold, 2, true);
  const std::string json = obs::to_chrome_trace(run.trace);
  const std::vector<obs::ParsedEvent> events = obs::parse_chrome_trace(json);
  std::size_t spans = 0, mem_bytes = 0, mem_frag = 0;
  for (const obs::ParsedEvent& e : events) {
    if (e.at("ph") == "X") {
      ++spans;
      continue;
    }
    ASSERT_EQ(e.at("ph"), "C");
    const int pid = std::stoi(e.at("pid"));
    EXPECT_GE(pid, 0);
    EXPECT_LT(pid, run.trace.num_ranks());
    EXPECT_GE(std::stod(e.at("ts")), 0.0);
    if (e.at("name") == "mem bytes") {
      ++mem_bytes;
      EXPECT_TRUE(e.count("args.allocated"));
      EXPECT_TRUE(e.count("args.reserved"));
      EXPECT_GE(std::stoll(e.at("args.reserved")),
                std::stoll(e.at("args.allocated")));
    } else {
      ASSERT_EQ(e.at("name"), "mem fragmentation");
      ++mem_frag;
      ASSERT_TRUE(e.count("args.frac"));
      const double frac = std::stod(e.at("args.frac"));
      EXPECT_GE(frac, 0.0);
      EXPECT_LE(frac, 1.0);
    }
  }
  EXPECT_EQ(spans, run.sched.total_ops());
  std::size_t total_events = 0;
  for (int r = 0; r < run.trace.num_ranks(); ++r) {
    total_events += run.trace.memory(r)->events().size();
  }
  EXPECT_EQ(mem_bytes, total_events) << "one bytes sample per allocator event";
  EXPECT_EQ(mem_frag, total_events);
}

TEST(MemoryTrace, DetachedTraceIsSpanOnlyAndReportsUnavailable) {
  const MemRun run = run_tracked(ScheduleFamily::kHelixTwoFold, 2, false);
  EXPECT_FALSE(run.trace.memory_enabled());
  EXPECT_EQ(run.trace.memory(0), nullptr);
  // Without memory tracking the export is exactly the span-only trace: the
  // same event count and flat 6-field layout the pre-existing exporter test
  // pins down — no counter events appear.
  const std::vector<obs::ParsedEvent> events =
      obs::parse_chrome_trace(obs::to_chrome_trace(run.trace));
  ASSERT_EQ(events.size(), run.sched.total_ops());
  for (const obs::ParsedEvent& e : events) {
    EXPECT_EQ(e.at("ph"), "X");
    EXPECT_EQ(e.size(), 6u);
  }
  const core::UnitCostModel cost;
  const sim::SimResult predicted = sim::Simulator(cost).run(run.sched);
  const obs::ReconciliationReport report =
      obs::reconcile(run.sched, predicted, run.trace);
  EXPECT_FALSE(report.memory.available);
  EXPECT_TRUE(report.memory.stages.empty());
  EXPECT_EQ(obs::render_reconciliation(report).find("memory:"),
            std::string::npos);
  EXPECT_TRUE(obs::render_memory_attribution(run.trace).empty());
}

TEST(MemoryTrace, TrackingIsNumericallyInvisible) {
  const nn::MiniGptConfig cfg = mem_config(2);
  const nn::Batch batch = nn::Batch::random(cfg, 7);
  nn::ModelParams plain = nn::ModelParams::init(cfg, 11);
  nn::ModelParams tracked = nn::ModelParams::init(cfg, 11);
  obs::TraceCollector trace(2);
  Trainer plain_trainer(plain, {.family = ScheduleFamily::kHelixTwoFold,
                                .pipeline_stages = 2});
  Trainer tracked_trainer(tracked, {.family = ScheduleFamily::kHelixTwoFold,
                                    .pipeline_stages = 2,
                                    .trace = &trace,
                                    .track_memory = true});
  for (int iter = 0; iter < 2; ++iter) {
    const IterationMetrics a = plain_trainer.train_step(batch);
    const IterationMetrics b = tracked_trainer.train_step(batch);
    ASSERT_EQ(a.micro_batch_losses.size(), b.micro_batch_losses.size());
    for (std::size_t mb = 0; mb < a.micro_batch_losses.size(); ++mb) {
      EXPECT_EQ(a.micro_batch_losses[mb], b.micro_batch_losses[mb]);
    }
    EXPECT_EQ(plain.max_diff(tracked), 0.0) << "after iter " << iter;
  }
}

TEST(MemoryTrace, ReconciliationReproducesFig4Imbalance) {
  const int stages = 4;
  const MemRun run = run_tracked(ScheduleFamily::k1F1B, stages, true);
  const core::UnitCostModel cost;
  const sim::SimResult predicted = sim::Simulator(cost).run(run.sched);
  const TrainerOptions opt{.family = ScheduleFamily::k1F1B,
                           .pipeline_stages = stages};
  const std::vector<std::int64_t> model =
      predict_stage_peak_bytes(mem_config(stages), opt);
  const obs::ReconciliationReport report =
      obs::reconcile(run.sched, predicted, run.trace, model);

  ASSERT_TRUE(report.memory.available);
  ASSERT_EQ(report.memory.stages.size(), static_cast<std::size_t>(stages));
  for (const obs::StageMemoryReconciliation& s : report.memory.stages) {
    EXPECT_GT(s.measured_peak_bytes, 0) << "stage " << s.stage;
    EXPECT_GE(s.measured_reserved_peak, s.measured_peak_bytes);
    EXPECT_GT(s.model_bytes, 0);
    EXPECT_GT(s.sim_bytes, 0);
    // Measured allocator peak vs the closed-form Table 1 / Eq. 2 prediction:
    // within 30% (slack covers allocator rounding and transient reuse).
    EXPECT_GT(s.vs_model, 0.70) << "stage " << s.stage;
    EXPECT_LT(s.vs_model, 1.30) << "stage " << s.stage;
    EXPECT_GT(s.vs_sim, 0.60) << "stage " << s.stage;
    EXPECT_LT(s.vs_sim, 1.50) << "stage " << s.stage;
  }
  // The Figure 4 shape: stage i of 1F1B holds min(p - i, m) outstanding
  // micro batches, so measured peaks strictly decrease across stages and the
  // ordering matches the analytical model.
  for (std::size_t i = 1; i < report.memory.stages.size(); ++i) {
    EXPECT_GT(report.memory.stages[i - 1].measured_peak_bytes,
              report.memory.stages[i].measured_peak_bytes)
        << "stages " << i - 1 << " vs " << i;
  }
  EXPECT_GT(report.memory.measured_imbalance, 1.5);
  EXPECT_GT(report.memory.model_imbalance, 1.5);
  EXPECT_TRUE(report.memory.imbalance_order_matches_model);
  const std::string rendered = obs::render_reconciliation(report);
  EXPECT_NE(rendered.find("memory:"), std::string::npos);

  // Without the model prediction the memory section still reports measured
  // and simulated peaks but makes no ordering claim.
  const obs::ReconciliationReport no_model =
      obs::reconcile(run.sched, predicted, run.trace);
  ASSERT_TRUE(no_model.memory.available);
  EXPECT_EQ(no_model.memory.stages[0].model_bytes, 0);
  EXPECT_EQ(no_model.memory.stages[0].vs_model, 0.0);
  EXPECT_FALSE(no_model.memory.imbalance_order_matches_model);
}

}  // namespace
}  // namespace helix::runtime
