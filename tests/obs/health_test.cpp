// Watchdog + wait-graph analysis on raw worlds: cycle detection, the
// deadlock / straggler / lost-message verdicts, monitor trip-and-poison, and
// the post-mortem renderers (text, structured JSON, Chrome trace).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "comm/world.h"
#include "obs/export.h"
#include "obs/health.h"
#include "tensor/ops.h"

namespace helix::obs {
namespace {

using comm::Endpoint;
using comm::World;
using comm::WorldAborted;
using tensor::Tensor;

Tensor constant(float v, tensor::i64 n = 4) {
  Tensor t({n});
  for (tensor::i64 i = 0; i < n; ++i) t[i] = v;
  return t;
}

HealthOptions fast_watchdog(int window_ms = 200) {
  HealthOptions o;
  o.enabled = true;
  o.no_progress_window_ms = window_ms;
  o.poll_interval_ms = 10;
  return o;
}

WaitNode node(int rank, BlockedKind kind, int src, std::int64_t tag,
              std::int64_t progress_ns) {
  WaitNode n;
  n.rank = rank;
  n.kind = kind;
  n.src = src;
  n.tag = tag;
  n.last_progress_ns = progress_ns;
  return n;
}

// --- pure wait-graph analysis -------------------------------------------

TEST(WaitGraph, RecvCycleIsDeadlockNamingOldestMember) {
  WaitGraph g;
  g.nodes = {node(0, BlockedKind::kRecv, 1, 10, 500),
             node(1, BlockedKind::kRecv, 0, 20, 100),
             node(2, BlockedKind::kDone, -1, -1, 400)};
  g.edges = {{0, 1, BlockedKind::kRecv, 10}, {1, 0, BlockedKind::kRecv, 20}};
  const HangReport rep = analyze_wait_graph(g, 250);
  EXPECT_EQ(rep.verdict, HangVerdict::kDeadlock);
  ASSERT_EQ(rep.cycle.size(), 2u);
  EXPECT_EQ(rep.first_stalled_rank, 1);  // oldest progress stamp in the cycle
  EXPECT_EQ(rep.stalled_edge.on, 0);
  EXPECT_EQ(rep.stalled_edge.tag, 20);
  EXPECT_EQ(rep.window_ms, 250);
  EXPECT_NE(rep.summary.find("deadlock"), std::string::npos);
}

TEST(WaitGraph, ChainIntoRunningRankIsStraggler) {
  WaitGraph g;
  g.nodes = {node(0, BlockedKind::kNone, -1, -1, 50),
             node(1, BlockedKind::kRecv, 0, 7, 300),
             node(2, BlockedKind::kRecv, 1, 8, 200)};
  g.edges = {{1, 0, BlockedKind::kRecv, 7}, {2, 1, BlockedKind::kRecv, 8}};
  const HangReport rep = analyze_wait_graph(g, 100);
  EXPECT_EQ(rep.verdict, HangVerdict::kStraggler);
  EXPECT_TRUE(rep.cycle.empty());
  EXPECT_EQ(rep.first_stalled_rank, 0);
  // The edge into the straggler names who is waiting for it.
  EXPECT_EQ(rep.stalled_edge.waiter, 1);
  EXPECT_EQ(rep.stalled_edge.tag, 7);
}

TEST(WaitGraph, BlockedRankWithAllPeersDoneIsLostMessage) {
  WaitGraph g;
  g.nodes = {node(0, BlockedKind::kDone, -1, -1, 900),
             node(1, BlockedKind::kRecv, 0, 3, 100)};
  g.edges = {{1, 0, BlockedKind::kRecv, 3}};
  const HangReport rep = analyze_wait_graph(g, 100);
  EXPECT_EQ(rep.verdict, HangVerdict::kStraggler);
  EXPECT_EQ(rep.first_stalled_rank, 1);
  EXPECT_EQ(rep.stalled_edge.on, 0);
  EXPECT_EQ(rep.stalled_edge.tag, 3);
  EXPECT_NE(rep.summary.find("lost"), std::string::npos);
}

TEST(WaitGraph, BarrierWaitFansOutToAbsentRanks) {
  WaitGraph g;
  HealthCollector hc(3);
  hc.cell(0).blocked.store(pack_blocked(BlockedKind::kBarrier, -1, -1),
                           std::memory_order_relaxed);
  hc.cell(1).blocked.store(pack_blocked(BlockedKind::kBarrier, -1, -1),
                           std::memory_order_relaxed);
  // rank 2 never arrives (running).
  g = snapshot_wait_graph(hc);
  ASSERT_EQ(g.nodes.size(), 3u);
  // Each barrier waiter has exactly one edge: to rank 2.
  int barrier_edges = 0;
  for (const WaitEdge& e : g.edges) {
    EXPECT_EQ(e.on, 2);
    EXPECT_EQ(e.kind, BlockedKind::kBarrier);
    ++barrier_edges;
  }
  EXPECT_EQ(barrier_edges, 2);
  EXPECT_TRUE(g.find_cycle().empty());
}

TEST(WaitGraph, HealthyGraphHasNoVerdict) {
  WaitGraph g;
  g.nodes = {node(0, BlockedKind::kDone, -1, -1, 10),
             node(1, BlockedKind::kDone, -1, -1, 20)};
  const HangReport rep = analyze_wait_graph(g, 100);
  EXPECT_EQ(rep.verdict, HangVerdict::kNone);
  EXPECT_EQ(rep.first_stalled_rank, -1);
}

// --- live monitor on a raw world ----------------------------------------

TEST(HealthMonitor, MutualRecvDeadlockTripsWithCycleVerdict) {
  World w(2);
  HealthCollector hc(2, 64);
  w.set_health(hc.cells(), hc.recorders());
  const HealthOptions opt = fast_watchdog();
  HealthMonitor mon(w, hc, opt);
  mon.start();
  EXPECT_THROW(w.run([](Endpoint& ep) {
                 // Classic crossed recv: each rank waits for the other first.
                 (void)ep.recv(1 - ep.rank(), 100 + ep.rank());
               }),
               WorldAborted);
  mon.stop();
  ASSERT_TRUE(mon.tripped());
  const HangReport& rep = mon.report();
  EXPECT_TRUE(rep.tripped);
  EXPECT_EQ(rep.verdict, HangVerdict::kDeadlock);
  EXPECT_EQ(rep.cycle.size(), 2u);
  ASSERT_GE(rep.first_stalled_rank, 0);
  EXPECT_EQ(rep.stalled_edge.on, 1 - rep.first_stalled_rank);
  EXPECT_EQ(rep.stalled_edge.tag, 100 + rep.first_stalled_rank);
}

TEST(HealthMonitor, SleepingPeerIsStragglerNotDeadlock) {
  World w(2);
  HealthCollector hc(2, 64);
  w.set_health(hc.cells(), hc.recorders());
  HealthMonitor mon(w, hc, fast_watchdog(150));
  mon.start();
  EXPECT_THROW(
      w.run([](Endpoint& ep) {
        if (ep.rank() == 0) {
          // Far beyond the window: the straggler everyone waits for.
          std::this_thread::sleep_for(std::chrono::milliseconds(600));
          ep.send(1, 9, {constant(1.0f)});
        } else {
          (void)ep.recv(0, 9);
        }
      }),
      WorldAborted);
  mon.stop();
  ASSERT_TRUE(mon.tripped());
  EXPECT_EQ(mon.report().verdict, HangVerdict::kStraggler);
  EXPECT_EQ(mon.report().first_stalled_rank, 0);
  EXPECT_EQ(mon.report().stalled_edge.waiter, 1);
  EXPECT_EQ(mon.report().stalled_edge.tag, 9);
}

TEST(HealthMonitor, HungDeliveryNamesTheInjectedEdge) {
  World w(2);
  HealthCollector hc(2, 64);
  w.set_health(hc.cells(), hc.recorders());
  comm::FaultPlan plan;
  plan.deliveries.emplace_back(0, 1, 3, comm::DeliveryFault::Action::kHang);
  w.set_faults(&plan);
  HealthMonitor mon(w, hc, fast_watchdog(150));
  mon.start();
  EXPECT_THROW(w.run([](Endpoint& ep) {
                 if (ep.rank() == 0) {
                   ep.send(1, 3, {constant(1.0f)});  // swallowed
                 } else {
                   (void)ep.recv(0, 3);
                 }
               }),
               WorldAborted);
  mon.stop();
  ASSERT_TRUE(mon.tripped());
  const HangReport& rep = mon.report();
  EXPECT_EQ(rep.verdict, HangVerdict::kStraggler);
  EXPECT_EQ(rep.first_stalled_rank, 1);
  EXPECT_EQ(rep.stalled_edge.on, 0);
  EXPECT_EQ(rep.stalled_edge.tag, 3);
}

TEST(HealthMonitor, HealthyRunDoesNotTrip) {
  World w(2);
  HealthCollector hc(2, 64);
  w.set_health(hc.cells(), hc.recorders());
  HealthMonitor mon(w, hc, fast_watchdog(2000));
  mon.start();
  w.run([](Endpoint& ep) {
    if (ep.rank() == 0) {
      ep.send(1, 1, {constant(2.0f)});
    } else {
      EXPECT_FLOAT_EQ(ep.recv(0, 1)[0][0], 2.0f);
    }
    ep.barrier();
  });
  mon.stop();
  EXPECT_FALSE(mon.tripped());
}

// --- post-mortem rendering ----------------------------------------------

TEST(PostMortem, ReportsCarryTailsPendingRecvsAndParseableTrace) {
  World w(2);
  HealthCollector hc(2, 64);
  w.set_health(hc.cells(), hc.recorders());
  HealthMonitor mon(w, hc, fast_watchdog(150));
  mon.start();
  EXPECT_THROW(w.run([](Endpoint& ep) {
                 if (ep.rank() == 0) {
                   ep.send(1, 4, {constant(1.0f)});
                   (void)ep.recv(1, 5);  // never sent
                 } else {
                   (void)ep.recv(0, 4);
                   (void)ep.recv(0, 6);  // never sent
                 }
               }),
               WorldAborted);
  mon.stop();
  ASSERT_TRUE(mon.tripped());
  const PostMortem pm =
      build_post_mortem(w, hc, &mon.report(), mon.report().summary);
  ASSERT_EQ(pm.ranks.size(), 2u);
  // Every rank has a recorder tail and its blocked-at-death state.
  for (const RankDump& d : pm.ranks) {
    EXPECT_FALSE(d.tail.empty()) << "rank " << d.rank;
    EXPECT_EQ(d.state.kind, BlockedKind::kRecv) << "rank " << d.rank;
    ASSERT_EQ(d.pending_recvs.size(), 1u) << "rank " << d.rank;
  }
  EXPECT_EQ(pm.ranks[0].pending_recvs[0].tag, 5);
  EXPECT_EQ(pm.ranks[1].pending_recvs[0].tag, 6);

  const std::string text = render_post_mortem(pm);
  EXPECT_NE(text.find("post-mortem"), std::string::npos);
  EXPECT_NE(text.find("wait-graph"), std::string::npos);
  EXPECT_NE(text.find("pending recvs"), std::string::npos);

  // The trace export is valid Chrome JSON with one event per tail entry.
  const std::vector<ParsedEvent> events =
      parse_chrome_trace(post_mortem_trace_json(pm));
  std::size_t tail_total = 0;
  for (const RankDump& d : pm.ranks) tail_total += d.tail.size();
  EXPECT_EQ(events.size(), tail_total);

  const std::string json = post_mortem_json(pm);
  EXPECT_NE(json.find("\"verdict\""), std::string::npos);
  EXPECT_NE(json.find("\"stalled_edge\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  const std::string table = render_progress_table(hc);
  EXPECT_NE(table.find("rank"), std::string::npos);
}

}  // namespace
}  // namespace helix::obs
