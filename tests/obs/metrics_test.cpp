// Direct unit tests for the obs/metrics.h primitives: Counter, Gauge
// high-water tracking, and the power-of-two DurationHistogram — including
// the edge cases the runtime actually produces (0 ns spans on fast ops,
// empty histograms on idle ranks) and the regression where a quantile's
// power-of-two bucket bound exceeded the largest observed duration.
#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace helix::obs {
namespace {

TEST(Counter, AddAndInc) {
  Counter c;
  EXPECT_EQ(c.value, 0);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value, 42);
  c.add(-2);
  EXPECT_EQ(c.value, 40);
}

TEST(Gauge, TracksHighWater) {
  Gauge g;
  g.set(10);
  g.set(4);
  EXPECT_EQ(g.value, 4);
  EXPECT_EQ(g.high_water, 10);
  g.add(20);
  EXPECT_EQ(g.value, 24);
  EXPECT_EQ(g.high_water, 24);
  g.add(-24);
  EXPECT_EQ(g.value, 0);
  EXPECT_EQ(g.high_water, 24) << "high water never decreases";
}

TEST(DurationHistogram, EmptyHistogram) {
  const DurationHistogram h;
  EXPECT_EQ(h.count, 0);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.quantile_upper_bound_ns(0.5), 0);
  EXPECT_EQ(h.quantile_upper_bound_ns(1.0), 0);
}

TEST(DurationHistogram, ZeroAndNegativeDurations) {
  DurationHistogram h;
  h.record(0);
  h.record(-5);  // clamped to 0 (clock went backwards)
  EXPECT_EQ(h.count, 2);
  EXPECT_EQ(h.sum_ns, 0);
  EXPECT_EQ(h.max_ns, 0);
  EXPECT_EQ(h.buckets[0], 2) << "bucket 0 absorbs 0 ns";
  EXPECT_EQ(h.quantile_upper_bound_ns(0.99), 0)
      << "bound must clamp to max_ns, not report the 2 ns bucket edge";
}

TEST(DurationHistogram, RecordPlacesInPowerOfTwoBuckets) {
  DurationHistogram h;
  h.record(1);    // [1, 2)   -> bucket 0
  h.record(2);    // [2, 4)   -> bucket 1
  h.record(3);    // [2, 4)   -> bucket 1
  h.record(700);  // [512, 1024) -> bucket 9
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[1], 2);
  EXPECT_EQ(h.buckets[9], 1);
  EXPECT_EQ(h.count, 4);
  EXPECT_EQ(h.sum_ns, 706);
  EXPECT_EQ(h.max_ns, 700);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 706.0 / 4.0);
}

TEST(DurationHistogram, QuantileClampsBucketBoundToMax) {
  // Regression: a single 5 ns sample lands in bucket [4, 8); the upper
  // bound returned for any quantile must be 5 (the observed max), not 8.
  DurationHistogram h;
  h.record(5);
  EXPECT_EQ(h.quantile_upper_bound_ns(0.5), 5);
  EXPECT_EQ(h.quantile_upper_bound_ns(1.0), 5);

  // With a spread, low quantiles still report the (unclamped) bucket bound
  // of their own bucket.
  DurationHistogram spread;
  for (int i = 0; i < 99; ++i) spread.record(3);  // bucket [2, 4)
  spread.record(1000);                            // bucket [512, 1024)
  EXPECT_EQ(spread.quantile_upper_bound_ns(0.5), 4);
  EXPECT_EQ(spread.quantile_upper_bound_ns(1.0), 1000)
      << "tail bound clamps to the observed max, not 1024";
}

TEST(DurationHistogram, MergeCombinesShards) {
  DurationHistogram a, b;
  a.record(3);
  a.record(5);
  b.record(100);
  DurationHistogram m = a;
  m.merge(b);
  EXPECT_EQ(m.count, 3);
  EXPECT_EQ(m.sum_ns, 108);
  EXPECT_EQ(m.max_ns, 100);
  EXPECT_EQ(m.buckets[1], 1);  // 3
  EXPECT_EQ(m.buckets[2], 1);  // 5
  EXPECT_EQ(m.buckets[6], 1);  // 100 in [64, 128)
  // Merging an empty histogram is a no-op.
  const DurationHistogram before = m;
  m.merge(DurationHistogram{});
  EXPECT_EQ(m.count, before.count);
  EXPECT_EQ(m.sum_ns, before.sum_ns);
  EXPECT_EQ(m.max_ns, before.max_ns);
}

TEST(Summarize, FlattensShardsIntoRankSummary) {
  CommMetrics comm;
  RuntimeMetrics runtime;
  comm.bytes_sent.add(100);
  comm.bytes_received.add(200);
  comm.recv_wait_exposed_ns.add(7);
  comm.recv_wait_hidden_ns.add(17);
  comm.barrier_wait_ns.add(3);
  comm.mailbox_depth.set(5);
  comm.mailbox_depth.set(2);
  runtime.ops_executed.add(9);
  runtime.compute_ns.add(11);
  runtime.comm_op_ns.add(13);
  runtime.live_tensor_bytes.set(1024);
  runtime.live_tensor_bytes.set(64);
  const RankSummary s = summarize(4, comm, runtime);
  EXPECT_EQ(s.rank, 4);
  EXPECT_EQ(s.ops_executed, 9);
  EXPECT_EQ(s.busy_ns, 11);
  EXPECT_EQ(s.comm_op_ns, 13);
  EXPECT_EQ(s.recv_wait_exposed_ns, 7);
  EXPECT_EQ(s.recv_wait_hidden_ns, 17);
  EXPECT_EQ(s.barrier_wait_ns, 3);
  EXPECT_EQ(s.bytes_sent, 100);
  EXPECT_EQ(s.bytes_received, 200);
  EXPECT_EQ(s.live_peak_bytes, 1024);
  EXPECT_EQ(s.mailbox_depth_peak, 5);
}

}  // namespace
}  // namespace helix::obs
