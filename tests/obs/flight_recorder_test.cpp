// Flight-recorder primitives: packed event round-trips, ring wrap order,
// concurrent writers, blocked-cell packing and RankHealth counters.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/flight.h"

namespace helix::obs {
namespace {

TEST(FlightPacking, EventRoundTrips) {
  const std::int64_t t = 123456789;
  const std::uint64_t meta = pack_flight_meta(
      FlightEventType::kOpRetire, core::OpKind::kBwdAttn, 3, 7, 1);
  const std::uint64_t arg = pack_flight_arg(42, 2048);
  const FlightEvent e = unpack_flight(meta, arg, static_cast<std::uint64_t>(t));
  EXPECT_EQ(e.type, FlightEventType::kOpRetire);
  EXPECT_EQ(e.kind, core::OpKind::kBwdAttn);
  EXPECT_EQ(e.mb, 3);
  EXPECT_EQ(e.layer, 7);
  EXPECT_EQ(e.peer, 1);
  EXPECT_EQ(e.tag, 42);
  EXPECT_EQ(e.bytes, 2048);
  EXPECT_EQ(e.t_ns, t);
}

TEST(FlightPacking, NotApplicableFieldsStayMinusOne) {
  const FlightEvent e = unpack_flight(
      pack_flight_meta(FlightEventType::kBarrierEnter, core::OpKind::kOptimStep,
                       -1, -1, -1),
      pack_flight_arg(-1, 0), 0);
  EXPECT_EQ(e.mb, -1);
  EXPECT_EQ(e.layer, -1);
  EXPECT_EQ(e.peer, -1);
  EXPECT_EQ(e.tag, -1);
  EXPECT_EQ(e.bytes, 0);
}

TEST(FlightPacking, BytesClampToU32) {
  const FlightEvent e = unpack_flight(
      pack_flight_meta(FlightEventType::kSendPost, core::OpKind::kSend, -1, -1,
                       1),
      pack_flight_arg(5, (1LL << 40)), 0);
  EXPECT_EQ(e.bytes, 0xffffffffLL);
}

TEST(FlightPacking, BlockedCellRoundTrips) {
  const BlockedState b = unpack_blocked(pack_blocked(BlockedKind::kRecv, 3, 99));
  EXPECT_EQ(b.kind, BlockedKind::kRecv);
  EXPECT_EQ(b.src, 3);
  EXPECT_EQ(b.tag, 99);
  const BlockedState none = unpack_blocked(0);
  EXPECT_EQ(none.kind, BlockedKind::kNone);
  EXPECT_EQ(none.src, -1);
  EXPECT_EQ(none.tag, -1);
  const BlockedState done = unpack_blocked(pack_blocked(BlockedKind::kDone, -1, -1));
  EXPECT_EQ(done.kind, BlockedKind::kDone);
  EXPECT_EQ(done.src, -1);
  EXPECT_EQ(done.tag, -1);
}

TEST(FlightRecorder, TailIsLastEventsInOrder) {
  FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i) {
    rec.record(FlightEventType::kOpRetire, core::OpKind::kFwdPre, i, 0, -1, -1,
               0, 1000 + i);
  }
  EXPECT_EQ(rec.total(), 20u);
  const std::vector<FlightEvent> tail = rec.tail();
  ASSERT_EQ(tail.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tail[static_cast<std::size_t>(i)].mb, 12 + i);  // events 12..19
    EXPECT_EQ(tail[static_cast<std::size_t>(i)].t_ns, 1012 + i);
  }
}

TEST(FlightRecorder, TailShorterThanCapacityWhenFewEvents) {
  FlightRecorder rec(16);
  rec.record(FlightEventType::kSendPost, core::OpKind::kSend, -1, -1, 1, 7, 64,
             5);
  const std::vector<FlightEvent> tail = rec.tail();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].type, FlightEventType::kSendPost);
  EXPECT_EQ(tail[0].peer, 1);
  EXPECT_EQ(tail[0].tag, 7);
  EXPECT_EQ(tail[0].bytes, 64);
}

TEST(FlightRecorder, ConfigureResizesAndResets) {
  FlightRecorder rec(4);
  rec.record(FlightEventType::kOpStart, core::OpKind::kFwdPre, 0, 0, -1, -1, 0,
             1);
  rec.configure(32);
  EXPECT_EQ(rec.capacity(), 32u);
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_TRUE(rec.tail().empty());
  // Degenerate capacities clamp to one slot instead of dividing by zero.
  rec.configure(0);
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record(FlightEventType::kOpStart, core::OpKind::kFwdPre, 1, 0, -1, -1, 0,
             2);
  EXPECT_EQ(rec.tail().size(), 1u);
}

TEST(FlightRecorder, ConcurrentWritersLoseNothingFromTheCount) {
  FlightRecorder rec(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.record(FlightEventType::kOpRetire, core::OpKind::kFwdAttn, t, i,
                   -1, -1, 0, i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.total(), static_cast<std::uint64_t>(kThreads * kPerThread));
  // The ring holds the newest `capacity` claims; every slot decodes to a
  // real event (no torn slot can produce kNone: the type byte is never 0).
  const std::vector<FlightEvent> tail = rec.tail();
  EXPECT_EQ(tail.size(), 64u);
  for (const FlightEvent& e : tail) {
    EXPECT_EQ(e.type, FlightEventType::kOpRetire);
  }
}

TEST(RankHealth, CountersAndReset) {
  RankHealth h;
  h.ops_retired.fetch_add(3, std::memory_order_relaxed);
  h.deliveries.fetch_add(2, std::memory_order_relaxed);
  EXPECT_EQ(h.progress_sum(), 5);
  h.blocked.store(pack_blocked(BlockedKind::kBarrier, -1, -1),
                  std::memory_order_relaxed);
  h.reset();
  EXPECT_EQ(h.progress_sum(), 0);
  EXPECT_EQ(unpack_blocked(h.blocked.load(std::memory_order_relaxed)).kind,
            BlockedKind::kNone);
}

}  // namespace
}  // namespace helix::obs
