#include "par/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace helix::par {
namespace {

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    constexpr i64 kChunks = 100;
    std::vector<std::atomic<int>> hits(kChunks);
    pool.for_chunks(kChunks, [&](i64 c) { hits[static_cast<std::size_t>(c)]++; });
    for (i64 c = 0; c < kChunks; ++c) {
      EXPECT_EQ(hits[static_cast<std::size_t>(c)].load(), 1) << "chunk " << c;
    }
  }
}

TEST(ThreadPool, ZeroOrNegativeChunksIsANoOp) {
  ThreadPool pool(3);
  bool ran = false;
  pool.for_chunks(0, [&](i64) { ran = true; });
  pool.for_chunks(-5, [&](i64) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PartitionIsFixedAcrossThreadCounts) {
  // parallel_for's (begin, end, chunk) triples depend only on (n, grain) —
  // the determinism contract — so collect them under different pool sizes
  // and require identical sets.
  const auto collect = [](int threads) {
    set_global_threads(threads);
    std::mutex mu;
    std::set<std::tuple<i64, i64, i64>> chunks;
    parallel_for(103, 10, [&](i64 b, i64 e, i64 c) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({b, e, c});
    });
    return chunks;
  };
  const auto serial = collect(1);
  EXPECT_EQ(serial.size(), 11u);  // ceil(103 / 10)
  EXPECT_TRUE(serial.count({100, 103, 10}) == 1);  // short tail chunk
  EXPECT_EQ(collect(2), serial);
  EXPECT_EQ(collect(4), serial);
  set_global_threads(1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  set_global_threads(4);
  std::atomic<int> total{0};
  parallel_for(8, 1, [&](i64, i64, i64) {
    // A kernel calling another pooled kernel from inside a chunk: the inner
    // region must fall back to inline execution, not deadlock on the pool.
    parallel_for(4, 1, [&](i64 b, i64 e, i64) {
      total += static_cast<int>(e - b);
    });
  });
  EXPECT_EQ(total.load(), 8 * 4);
  set_global_threads(1);
}

TEST(ThreadPool, ConcurrentRegionsFromManyThreadsComplete) {
  // Several "rank" threads hammering the shared pool at once: exactly one
  // wins the pool per region, the rest run inline; all results complete.
  set_global_threads(4);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<i64> sums(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 50; ++iter) {
        std::atomic<i64> sum{0};
        parallel_for(64, 4, [&](i64 b, i64 e, i64) {
          for (i64 i = b; i < e; ++i) sum += i;
        });
        sums[static_cast<std::size_t>(t)] = sum.load();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const i64 s : sums) EXPECT_EQ(s, 64 * 63 / 2);
  set_global_threads(1);
}

TEST(ThreadPool, StatsCountRegionsChunksAndWorkerActivity) {
  ThreadPool pool(4);
  pool.for_chunks(40, [](i64) {
    volatile double x = 0;
    for (int i = 0; i < 2000; ++i) x = x + i * 0.5;
  });
  pool.for_chunks(1, [](i64) {});  // single chunk -> inline
  const PoolStats s = pool.stats();
  EXPECT_EQ(s.threads, 4);
  EXPECT_EQ(s.regions, 1);
  EXPECT_EQ(s.inline_regions, 1);
  EXPECT_EQ(s.workers.size(), 3u);
  i64 worker_chunks = 0;
  for (const auto& w : s.workers) worker_chunks += w.chunks;
  EXPECT_EQ(worker_chunks + s.caller_chunks, 40 + 1);

  pool.reset_stats();
  const PoolStats z = pool.stats();
  EXPECT_EQ(z.regions, 0);
  EXPECT_EQ(z.caller_chunks, 0);
  for (const auto& w : z.workers) EXPECT_EQ(w.chunks, 0);
}

TEST(ThreadPool, EnvThreadsParsesAndClamps) {
  const auto with_env = [](const char* v) {
    if (v == nullptr) {
      unsetenv("HELIX_THREADS");
    } else {
      setenv("HELIX_THREADS", v, 1);
    }
    const int got = env_threads();
    unsetenv("HELIX_THREADS");
    return got;
  };
  EXPECT_EQ(with_env(nullptr), 1);
  EXPECT_EQ(with_env(""), 1);
  EXPECT_EQ(with_env("garbage"), 1);
  EXPECT_EQ(with_env("0"), 1);
  EXPECT_EQ(with_env("-3"), 1);
  EXPECT_EQ(with_env("4"), 4);
  EXPECT_EQ(with_env("100000"), 256);
}

TEST(ThreadPool, GlobalPoolStatsNeverConstructsThePool) {
  // Safe regardless of whether another test already built the pool: the
  // call must not throw and must report a sane thread count.
  const PoolStats s = global_pool_stats();
  EXPECT_GE(s.threads, 1);
}

}  // namespace
}  // namespace helix::par
