// Train a real (tiny) GPT with HelixPipe across simulated devices: each
// pipeline stage is a thread, every tensor moves through tagged send/recv,
// QKV weights are shipped to attention stages (Section 4.2), activations are
// recomputed without attention (Section 4.4.1) and the MLP runs chunked
// (Section 4.4.2). The loss trajectory is compared against a single-device
// sequential reference — they match exactly (Section 4.1's claim).
#include <cstdio>

#include "nn/reference.h"
#include "runtime/trainer.h"

using namespace helix;

int main() {
  const nn::MiniGptConfig cfg{.layers = 4, .hidden = 32, .heads = 4, .seq = 16,
                              .batch = 1, .vocab = 64, .micro_batches = 8,
                              .lr = 0.03f};
  const nn::Batch batch = nn::Batch::random(cfg, 2026);

  nn::ModelParams reference = nn::ModelParams::init(cfg, 7);
  nn::ModelParams piped = nn::ModelParams::init(cfg, 7);

  runtime::Trainer trainer(piped, {.family = runtime::ScheduleFamily::kHelixTwoFold,
                                   .pipeline_stages = 4,
                                   .recompute_without_attention = true,
                                   .mlp_chunks = 2});
  std::printf("HelixPipe numerical training: %d layers, %d micro batches, "
              "4 stages (threads), two-fold FILO + recompute + chunked MLP\n",
              cfg.layers, cfg.micro_batches);
  std::printf("schedule '%s' with %zu ops\n\n", trainer.schedule().name.c_str(),
              trainer.schedule().total_ops());
  std::printf("%-6s %14s %14s %12s\n", "iter", "helix loss", "reference", "param diff");
  for (int iter = 0; iter < 10; ++iter) {
    const auto helix_metrics = trainer.train_step(batch);
    const auto ref = nn::reference_train_step(reference, batch, /*mlp_chunks=*/2);
    std::printf("%-6d %14.6f %14.6f %12.2e\n", iter, helix_metrics.mean_loss(),
                ref.mean_loss, piped.max_diff(reference));
  }
  std::printf("\nLosses decrease and match the sequential reference exactly:\n"
              "the attention parallel pipeline preserves computation semantics.\n");
  return 0;
}
