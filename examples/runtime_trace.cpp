// Capture a wall-clock trace of the real threaded pipeline and reconcile it
// against the simulator's prediction for the exact same schedule IR.
//
// The repo's central claim is that src/sim (modeled time) and src/runtime
// (real tensors on rank threads) execute one schedule. This example makes
// both sides observable: it runs one Trainer iteration with an
// obs::TraceCollector attached (including per-rank memory tracking), writes
// the measured execution as Chrome trace-event JSON (open runtime_trace.json
// in chrome://tracing or https://ui.perfetto.dev — it uses the same event
// vocabulary as the simulator's exporter, so the two traces diff cleanly,
// and carries per-rank "mem bytes" / "mem fragmentation" counter tracks next
// to the span tracks), then prints the per-stage sim-vs-measured busy/bubble
// reconciliation, the three-way memory reconciliation (measured allocator
// peak vs closed-form model vs simulator) and the peak-attribution tables.
//
// With --health the example instead demonstrates the live-run health
// subsystem (obs/health.h): a healthy iteration observed through the live
// per-rank progress table, then a deliberately sabotaged iteration — one
// boundary delivery is swallowed by a seeded comm::FaultPlan — where the
// progress watchdog trips, names the hung (src, dst, tag) edge, and writes
// the merged post-mortem (text, JSON, Chrome trace) into --out-dir.
//
// Usage: runtime_trace [--out-dir DIR] [--health]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/cost.h"
#include "obs/export.h"
#include "obs/health.h"
#include "par/thread_pool.h"
#include "runtime/trainer.h"
#include "sim/simulator.h"
#include "sim/trace.h"

using namespace helix;

namespace {

int run_health_demo(const std::string& out_dir) {
  const nn::MiniGptConfig cfg{.layers = 4, .hidden = 32, .heads = 4, .seq = 16,
                              .batch = 1, .vocab = 64, .micro_batches = 8,
                              .lr = 0.03f};
  const nn::Batch batch = nn::Batch::random(cfg, 2026);

  obs::HealthOptions health;
  health.enabled = true;
  health.no_progress_window_ms = 500;
  health.poll_interval_ms = 20;
  runtime::TrainerOptions options{
      .family = runtime::ScheduleFamily::kHelixTwoFold,
      .pipeline_stages = 4,
      .recompute_without_attention = true,
      .mlp_chunks = 2,
      .health = health};

  // (a) Healthy iteration, observed live: train on a worker thread while the
  // main thread samples the collector's progress table — exactly what an
  // operator tailing a long run would look at.
  std::printf("— healthy run: live per-rank progress —\n");
  {
    nn::ModelParams params = nn::ModelParams::init(cfg, 7);
    runtime::Trainer trainer(params, options);
    std::thread step([&] { (void)trainer.train_step(batch); });
    for (int sample = 0; sample < 3; ++sample) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (trainer.health_collector() != nullptr) {
        std::printf("t+%dms:\n%s\n", 2 * (sample + 1),
                    obs::render_progress_table(*trainer.health_collector())
                        .c_str());
      }
    }
    step.join();
    std::printf("final:\n%s\n",
                obs::render_progress_table(*trainer.health_collector()).c_str());
  }

  // (b) Sabotaged iteration: swallow the schedule's first stage-0 boundary
  // delivery. The watchdog must trip within the configured window and the
  // post-mortem must name the injected edge.
  nn::ModelParams params = nn::ModelParams::init(cfg, 7);
  comm::FaultPlan plan;
  {
    const core::Schedule sched = runtime::build_numeric_schedule(cfg, options);
    for (const core::Op& op : sched.stage_ops[0]) {
      if (op.kind == core::OpKind::kSend) {
        plan.deliveries.emplace_back(0, op.peer, op.tag,
                                     comm::DeliveryFault::Action::kHang);
        std::printf("— sabotaged run: hanging delivery (src=0, dst=%d, "
                    "tag=%d) —\n", op.peer, op.tag);
        break;
      }
    }
  }
  options.health.faults = &plan;
  options.health.dump_dir = out_dir;
  runtime::Trainer faulty(params, options);
  try {
    (void)faulty.train_step(batch);
    std::fprintf(stderr, "ERROR: watchdog did not trip on the hung delivery\n");
    return 1;
  } catch (const runtime::HangDetected& e) {
    std::printf("watchdog tripped: %s\n\n", e.what());
  }
  const obs::PostMortem* pm = faulty.last_post_mortem();
  if (pm == nullptr) {
    std::fprintf(stderr, "ERROR: no post-mortem was built\n");
    return 1;
  }
  std::printf("%s\n", obs::render_post_mortem(*pm).c_str());

  // The same report was dumped to disk by the Trainer; show the artifacts an
  // operator would attach to a bug report.
  for (const char* ext : {".txt", ".json", ".trace.json"}) {
    const std::string path = (std::filesystem::path(out_dir) /
                              (std::string("postmortem_step0") + ext))
                                 .string();
    if (!std::filesystem::exists(path)) {
      std::fprintf(stderr, "ERROR: missing dump %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%lld bytes)\n", path.c_str(),
                static_cast<long long>(std::filesystem::file_size(path)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  bool health_demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--health") == 0) {
      health_demo = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out-dir DIR] [--health]\n", argv[0]);
      return 2;
    }
  }
  std::filesystem::create_directories(out_dir);
  if (health_demo) return run_health_demo(out_dir);

  const nn::MiniGptConfig cfg{.layers = 4, .hidden = 32, .heads = 4, .seq = 16,
                              .batch = 1, .vocab = 64, .micro_batches = 8,
                              .lr = 0.03f};
  const nn::Batch batch = nn::Batch::random(cfg, 2026);
  nn::ModelParams params = nn::ModelParams::init(cfg, 7);

  const int stages = 4;
  obs::TraceCollector trace(stages);
  const runtime::TrainerOptions options{
      .family = runtime::ScheduleFamily::kHelixTwoFold,
      .pipeline_stages = stages,
      .recompute_without_attention = true,
      .mlp_chunks = 2,
      .trace = &trace,
      .track_memory = true};
  runtime::Trainer trainer(params, options);
  const core::Schedule& sched = trainer.schedule();
  std::printf("HelixPipe runtime trace: schedule '%s', %zu ops, %d stages "
              "(threads), %d micro batches\n\n",
              sched.name.c_str(), sched.total_ops(), stages, cfg.micro_batches);

  // Warm-up iteration (first-touch allocation noise), then the traced one —
  // the collector resets itself at each train_step, keeping only the last.
  (void)trainer.train_step(batch);
  const runtime::IterationMetrics metrics = trainer.train_step(batch);
  std::printf("iteration mean loss %.6f\n\n", metrics.mean_loss());

  // (a) Chrome trace of the threaded execution, simulator event vocabulary
  // plus per-rank allocator counter tracks.
  const std::string json = obs::to_chrome_trace(trace);
  const std::string trace_path =
      (std::filesystem::path(out_dir) / "runtime_trace.json").string();
  std::ofstream(trace_path) << json;
  std::printf("wrote %s (%zu bytes) — open in chrome://tracing or Perfetto\n\n",
              trace_path.c_str(), json.size());

  // Per-rank measured summary from the metric shards.
  std::printf("%-6s %10s %10s %10s %12s %12s %12s %8s\n", "rank", "busy ms",
              "comm ms", "wait ms", "sent B", "recvd B", "live peak B", "mbox");
  for (const obs::RankSummary& r : metrics.rank_summaries) {
    std::printf("P%-5d %10.3f %10.3f %10.3f %12lld %12lld %12lld %8lld\n",
                r.rank, static_cast<double>(r.busy_ns) / 1e6,
                static_cast<double>(r.comm_op_ns) / 1e6,
                static_cast<double>(r.recv_wait_exposed_ns) / 1e6,
                static_cast<long long>(r.bytes_sent),
                static_cast<long long>(r.bytes_received),
                static_cast<long long>(r.live_peak_bytes),
                static_cast<long long>(r.mailbox_depth_peak));
  }

  // (b) Reconcile against the simulator's prediction for the same IR; the
  // memory section compares measured allocator peaks with the closed-form
  // model prediction and the simulator's per-stage peaks.
  const core::UnitCostModel cost;
  const sim::SimResult predicted = sim::Simulator(cost).run(sched);
  const std::vector<std::int64_t> model_peaks =
      runtime::predict_stage_peak_bytes(cfg, options);
  const obs::ReconciliationReport report =
      obs::reconcile(sched, predicted, trace, model_peaks);
  const std::string report_text = obs::render_reconciliation(report);
  std::printf("\n%s", report_text.c_str());

  // (c) Whose bytes: per-rank attribution of the measured allocated peak.
  const std::string attribution = obs::render_memory_attribution(trace);
  std::printf("\n%s", attribution.c_str());

  const std::string report_path =
      (std::filesystem::path(out_dir) / "reconciliation_report.txt").string();
  std::ofstream(report_path) << report_text << "\n" << attribution;
  std::printf("\nwrote %s\n", report_path.c_str());

  // (d) Kernel thread-pool utilization (HELIX_THREADS; 1 = serial kernels).
  std::printf("\n%s", obs::render_pool_stats(par::global_pool_stats()).c_str());

  std::printf("\nNotes: predicted fractions come from the unit cost model "
              "(every compute op 1 time unit), so absolute busy%% differs "
              "from wall-clock — the reconciliation target is the op "
              "*ordering* (same IR => same per-stage program order) and the "
              "bubble structure, not absolute times.\n");
  return report.all_orders_match_ir() && report.memory.available ? 0 : 1;
}
