// Capture a wall-clock trace of the real threaded pipeline and reconcile it
// against the simulator's prediction for the exact same schedule IR.
//
// The repo's central claim is that src/sim (modeled time) and src/runtime
// (real tensors on rank threads) execute one schedule. This example makes
// both sides observable: it runs one Trainer iteration with an
// obs::TraceCollector attached, writes the measured execution as Chrome
// trace-event JSON (open runtime_trace.json in chrome://tracing or
// https://ui.perfetto.dev — it uses the same event vocabulary as the
// simulator's exporter, so the two traces diff cleanly), then prints the
// per-stage sim-vs-measured busy/bubble reconciliation table.
#include <cstdio>
#include <fstream>

#include "core/cost.h"
#include "obs/export.h"
#include "par/thread_pool.h"
#include "runtime/trainer.h"
#include "sim/simulator.h"
#include "sim/trace.h"

using namespace helix;

int main() {
  const nn::MiniGptConfig cfg{.layers = 4, .hidden = 32, .heads = 4, .seq = 16,
                              .batch = 1, .vocab = 64, .micro_batches = 8,
                              .lr = 0.03f};
  const nn::Batch batch = nn::Batch::random(cfg, 2026);
  nn::ModelParams params = nn::ModelParams::init(cfg, 7);

  const int stages = 4;
  obs::TraceCollector trace(stages);
  runtime::Trainer trainer(params,
                           {.family = runtime::ScheduleFamily::kHelixTwoFold,
                            .pipeline_stages = stages,
                            .recompute_without_attention = true,
                            .mlp_chunks = 2,
                            .trace = &trace});
  const core::Schedule& sched = trainer.schedule();
  std::printf("HelixPipe runtime trace: schedule '%s', %zu ops, %d stages "
              "(threads), %d micro batches\n\n",
              sched.name.c_str(), sched.total_ops(), stages, cfg.micro_batches);

  // Warm-up iteration (first-touch allocation noise), then the traced one —
  // the collector resets itself at each train_step, keeping only the last.
  (void)trainer.train_step(batch);
  const runtime::IterationMetrics metrics = trainer.train_step(batch);
  std::printf("iteration mean loss %.6f\n\n", metrics.mean_loss());

  // (a) Chrome trace of the threaded execution, simulator event vocabulary.
  const std::string json = obs::to_chrome_trace(trace);
  const char* path = "runtime_trace.json";
  std::ofstream(path) << json;
  std::printf("wrote %s (%zu bytes) — open in chrome://tracing or Perfetto\n\n",
              path, json.size());

  // Per-rank measured summary from the metric shards.
  std::printf("%-6s %10s %10s %10s %12s %12s %12s %8s\n", "rank", "busy ms",
              "comm ms", "wait ms", "sent B", "recvd B", "live peak B", "mbox");
  for (const obs::RankSummary& r : metrics.rank_summaries) {
    std::printf("P%-5d %10.3f %10.3f %10.3f %12lld %12lld %12lld %8lld\n",
                r.rank, static_cast<double>(r.busy_ns) / 1e6,
                static_cast<double>(r.comm_op_ns) / 1e6,
                static_cast<double>(r.recv_wait_ns) / 1e6,
                static_cast<long long>(r.bytes_sent),
                static_cast<long long>(r.bytes_received),
                static_cast<long long>(r.live_peak_bytes),
                static_cast<long long>(r.mailbox_depth_peak));
  }

  // (b) Reconcile against the simulator's prediction for the same IR.
  const core::UnitCostModel cost;
  const sim::SimResult predicted = sim::Simulator(cost).run(sched);
  const obs::ReconciliationReport report = obs::reconcile(sched, predicted, trace);
  std::printf("\n%s", obs::render_reconciliation(report).c_str());

  // (c) Kernel thread-pool utilization (HELIX_THREADS; 1 = serial kernels).
  std::printf("\n%s", obs::render_pool_stats(par::global_pool_stats()).c_str());

  std::printf("\nNotes: predicted fractions come from the unit cost model "
              "(every compute op 1 time unit), so absolute busy%% differs "
              "from wall-clock — the reconciliation target is the op "
              "*ordering* (same IR => same per-stage program order) and the "
              "bubble structure, not absolute times.\n");
  return report.all_orders_match_ir() ? 0 : 1;
}
