// Render the paper's schedule diagrams (Figs. 2, 5, 7) as ASCII timelines,
// and export any of them as Chrome trace JSON for chrome://tracing.
//
//   schedule_visualizer [method] [p] [m] [L] [--comm RATIO] [--trace FILE]
//                       [--critical [ROWS]]
//     method: 1f1b | gpipe | zb1p | zb2p | coexec | helix | helix2 | helix2rc
//             (default all)
//     --critical: append the makespan-binding op chain (default 40 rows)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/cost.h"
#include "schedules/registry.h"
#include "sim/critical_path.h"
#include "sim/simulator.h"
#include "sim/trace.h"

using namespace helix;

namespace {

core::Schedule build(const std::string& method, const core::PipelineProblem& pr,
                     const core::CostModel& cost) {
  // Historical CLI aliases for the registry keys.
  const std::string key = method == "helix"      ? "helix_naive"
                          : method == "helix2"   ? "helix_two_fold"
                          : method == "helix2rc" ? "helix_two_fold_rc"
                                                 : method;
  if (const schedules::FamilySpec* fam = schedules::find_family(key)) {
    return fam->build(pr, cost);
  }
  throw std::invalid_argument("unknown method: " + method);
}

void show(const std::string& method, const core::PipelineProblem& pr,
          double comm_ratio, const std::string& trace_file,
          std::size_t critical_rows) {
  core::UnitCostModel::Units u;
  u.seconds_per_elem = comm_ratio * 3.0;  // relative to the 3-unit attention
  const core::UnitCostModel cost{u};
  // Two-fold variants need m divisible by 2p.
  core::PipelineProblem local = pr;
  if (method.rfind("helix2", 0) == 0 && local.m % (2 * local.p) != 0) {
    local.m = 2 * local.p;
  }
  const auto sched = build(method, local, cost);
  const auto res = sim::Simulator(cost).run(sched);
  std::printf("--- %s (p=%d, m=%d, L=%d): makespan %.1f units, bubble %.1f ---\n",
              sched.name.c_str(), local.p, local.m, local.L, res.makespan,
              res.stages[0].bubble);
  std::printf("%s\n",
              sim::render_ascii_timeline(
                  sched, res, {.time_per_col = res.makespan / 150.0, .max_cols = 150,
                               .show_comm = comm_ratio > 0})
                  .c_str());
  const auto critical = sim::critical_path(sched, res);
  std::printf("%s", critical_rows > 0
                        ? sim::render_critical_path(critical, sched, critical_rows).c_str()
                        : sim::render_critical_path(critical).c_str());
  if (!trace_file.empty()) {
    std::ofstream out(trace_file);
    out << sim::to_chrome_trace(sched, res);
    std::printf("chrome trace written to %s\n", trace_file.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string method = argc > 1 ? argv[1] : "all";
  core::PipelineProblem pr;
  pr.p = argc > 2 ? std::atoi(argv[2]) : 4;
  pr.m = argc > 3 ? std::atoi(argv[3]) : 4;
  pr.L = argc > 4 ? std::atoi(argv[4]) : 8;
  pr.comm.boundary = 1;
  pr.comm.pre_to_attn = 1;
  pr.comm.attn_to_post = 1;
  pr.include_lm_head = false;
  double comm_ratio = 0.0;
  std::string trace_file;
  std::size_t critical_rows = 0;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--comm") == 0 && i + 1 < argc) comm_ratio = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) trace_file = argv[++i];
    if (std::strcmp(argv[i], "--critical") == 0) {
      critical_rows = 40;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        critical_rows = static_cast<std::size_t>(std::atoi(argv[++i]));
      }
    }
  }
  try {
    if (method == "all") {
      for (const char* m : {"1f1b", "gpipe", "zb1p", "zb2p", "coexec", "helix",
                            "helix2"}) {
        show(m, pr, comm_ratio, "", critical_rows);
      }
    } else {
      show(method, pr, comm_ratio, trace_file, critical_rows);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
