// Capacity-planning tool: given a model, sequence length and cluster, sweep
// pipeline sizes and schedules, report iteration time / memory / feasibility
// and recommend a configuration. Exercises the full public API the way a
// systems engineer sizing a training job would.
//
//   cluster_planner [model 1.3B|3B|7B|13B] [seq] [cluster H20|A800]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/filo.h"
#include "model/gpu_specs.h"
#include "model/model_config.h"
#include "model/paper_cost.h"
#include "model/problem_factory.h"
#include "schedules/layerwise.h"
#include "schedules/zb1p.h"
#include "sim/simulator.h"

using namespace helix;
using model::i64;

namespace {

struct Row {
  std::string name;
  double seconds = 0;
  i64 peak = 0;
  bool oom = false;
};

Row simulate(const std::string& name, const core::Schedule& sched,
             const core::CostModel& cost, const std::vector<i64>& base,
             i64 capacity) {
  const auto res = sim::Simulator(cost).run(sched, base);
  return {name, res.makespan, res.max_peak_memory(),
          res.max_peak_memory() > capacity};
}

}  // namespace

int main(int argc, char** argv) {
  const model::ModelConfig mc = model::model_by_name(argc > 1 ? argv[1] : "7B");
  const i64 seq = argc > 2 ? std::atoll(argv[2]) : 131072;
  const model::ClusterSpec cluster = model::cluster_by_name(argc > 3 ? argv[3] : "H20");

  std::printf("Planning %s model at %lldk tokens on the %s cluster\n\n",
              mc.name.c_str(), static_cast<long long>(seq / 1024),
              cluster.name.c_str());
  std::printf("%-4s %-6s %-18s %12s %12s %10s\n", "p", "GPUs", "schedule",
              "iter (s)", "tokens/s", "peak GiB");

  double best_tps = 0;
  std::string best;
  for (const int p : {2, 4, 8}) {
    if (mc.num_layers % p != 0) continue;
    const model::TrainSetup setup{.seq_len = seq, .micro_batch = 1, .pipeline = p,
                                  .micro_batches = 2 * p, .sp = 8};
    const auto pr = model::make_problem(mc, setup);
    const model::LayerDims dims{.s = seq, .b = 1, .h = mc.hidden};
    const model::PaperCostModel cost(model::TimingModel(cluster, {}, setup.sp), mc,
                                     dims, p);
    const auto lw_base = model::layerwise_base_memory(mc, setup);
    const auto hx_base = model::helix_base_memory(mc, setup);

    std::vector<Row> rows;
    rows.push_back(simulate("1F1B", schedules::build_1f1b(pr), cost, lw_base,
                            cluster.gpu.mem_bytes));
    rows.push_back(simulate("ZB1P", schedules::build_zb1p(pr, cost), cost, lw_base,
                            cluster.gpu.mem_bytes));
    rows.push_back(simulate(
        "HelixPipe",
        core::build_helix_schedule(pr, {.two_fold = true, .recompute_without_attention = true}),
        cost, hx_base, cluster.gpu.mem_bytes));
    for (const Row& r : rows) {
      const double tps = 2.0 * p * static_cast<double>(seq) / r.seconds;
      std::printf("%-4d %-6d %-18s %12.2f %12.0f %9.1f%s\n", p, 8 * p,
                  r.name.c_str(), r.seconds, tps,
                  static_cast<double>(r.peak) / (1ull << 30), r.oom ? " OOM" : "");
      if (!r.oom && tps > best_tps) {
        best_tps = tps;
        best = r.name + " with p=" + std::to_string(p) + " (" +
               std::to_string(8 * p) + " GPUs)";
      }
    }
  }
  std::printf("\nRecommendation: %s — %.0f tokens/s.\n", best.c_str(), best_tps);
  std::printf("(Throughput is per iteration of 2p micro batches; per-GPU\n"
              "efficiency favours smaller p, wall-clock favours larger.)\n");
  return 0;
}
