// Capacity-planning tool: given a model, sequence length and cluster, sweep
// pipeline sizes and EVERY registered schedule family in one batched
// sim::Sweep call, report iteration time / memory / feasibility and recommend
// a configuration. Exercises the planning stack the way a systems engineer
// sizing a training job would: build the full (p, family) grid unfiltered,
// let the sweep service evaluate it in parallel, read the answers in order.
//
//   cluster_planner [model 1.3B|3B|7B|13B] [seq] [cluster H20|A800]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "model/gpu_specs.h"
#include "model/model_config.h"
#include "model/paper_cost.h"
#include "model/problem_factory.h"
#include "schedules/registry.h"
#include "sim/sweep.h"

using namespace helix;
using model::i64;

namespace {

bool is_helix(const std::string& family) {
  return family.rfind("helix", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const model::ModelConfig mc = model::model_by_name(argc > 1 ? argv[1] : "7B");
  const i64 seq = argc > 2 ? std::atoll(argv[2]) : 131072;
  const model::ClusterSpec cluster = model::cluster_by_name(argc > 3 ? argv[3] : "H20");

  std::printf("Planning %s model at %lldk tokens on the %s cluster\n\n",
              mc.name.c_str(), static_cast<long long>(seq / 1024),
              cluster.name.c_str());

  // Build the full grid: every pipeline size x every registered family.
  // Cost models are owned here and must outlive the sweep (items borrow
  // them); one PaperCostModel per pipeline size.
  const auto& families = schedules::family_registry();
  std::vector<std::unique_ptr<model::PaperCostModel>> costs;
  std::vector<sim::SweepItem> items;
  std::vector<int> item_p;  // pipeline size per item, for printing
  for (const int p : {2, 4, 8}) {
    if (mc.num_layers % p != 0) continue;
    const model::TrainSetup setup{.seq_len = seq, .micro_batch = 1, .pipeline = p,
                                  .micro_batches = 2 * p, .sp = 8};
    const auto pr = model::make_problem(mc, setup);
    const model::LayerDims dims{.s = seq, .b = 1, .h = mc.hidden};
    costs.push_back(std::make_unique<model::PaperCostModel>(
        model::TimingModel(cluster, {}, setup.sp), mc, dims, p));
    const model::PaperCostModel* cost = costs.back().get();
    const auto lw_base = model::layerwise_base_memory(mc, setup);
    const auto hx_base = model::helix_base_memory(mc, setup);
    for (const auto& fam : families) {
      items.push_back({fam.key, pr, cost, is_helix(fam.key) ? hx_base : lw_base});
      item_p.push_back(p);
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim::Sweep sweep;
  const std::vector<sim::SweepOutcome> results = sweep.run(items);
  const double sweep_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::printf("%-4s %-6s %-16s %12s %12s %10s\n", "p", "GPUs", "schedule",
              "iter (s)", "tokens/s", "peak GiB");
  double best_tps = 0;
  std::string best;
  int last_p = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const int p = item_p[i];
    if (p != last_p && last_p != 0) std::printf("\n");
    last_p = p;
    const sim::SweepOutcome& r = results[i];
    if (!r.ok) {
      std::printf("%-4d %-6d %-16s %12s (%s)\n", p, 8 * p,
                  items[i].family.c_str(), "-", r.error.c_str());
      continue;
    }
    const bool oom = r.max_peak_memory > cluster.gpu.mem_bytes;
    const double tps = 2.0 * p * static_cast<double>(seq) / r.makespan;
    std::printf("%-4d %-6d %-16s %12.2f %12.0f %9.1f%s\n", p, 8 * p,
                items[i].family.c_str(), r.makespan, tps,
                static_cast<double>(r.max_peak_memory) / (1ull << 30),
                oom ? " OOM" : "");
    if (!oom && tps > best_tps) {
      best_tps = tps;
      best = items[i].family + " with p=" + std::to_string(p) + " (" +
             std::to_string(8 * p) + " GPUs)";
    }
  }

  const sim::SweepStats st = sweep.stats();
  std::printf("\nRecommendation: %s — %.0f tokens/s.\n", best.c_str(), best_tps);
  std::printf("(Throughput is per iteration of 2p micro batches; per-GPU\n"
              "efficiency favours smaller p, wall-clock favours larger.)\n");
  std::printf(
      "\nSweep: %lld configs (%lld simulated, %lld cached, %lld inapplicable) "
      "in %.3f s — %.0f configs/s.\n",
      static_cast<long long>(st.items), static_cast<long long>(st.evaluated),
      static_cast<long long>(st.cache_hits), static_cast<long long>(st.failed),
      sweep_s, static_cast<double>(st.items) / sweep_s);
  return 0;
}
