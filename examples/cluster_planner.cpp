// Capacity-planning tool: given a model, sequence length and cluster, sweep
// pipeline sizes and EVERY registered schedule family in one batched
// sim::Sweep call, report iteration time / memory / feasibility and recommend
// a configuration. Exercises the planning stack the way a systems engineer
// sizing a training job would: build the full (p, family) grid unfiltered,
// let the sweep service evaluate it in parallel, read the answers in order.
//
//   cluster_planner [model 1.3B|3B|7B|13B] [seq] [cluster H20|A800] [--tune]
//
// With --tune, after the hand-built grid the planner runs the schedule
// autotuner (tune::tune, DESIGN §15) once per pipeline size, seeded from
// every applicable family and capped at the cluster's GPU memory. All tuner
// scoring goes through the same sim::Sweep instance as the grid, so the
// baseline evaluations are cache hits inside the search.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "model/gpu_specs.h"
#include "model/model_config.h"
#include "model/paper_cost.h"
#include "model/problem_factory.h"
#include "schedules/registry.h"
#include "sim/sweep.h"
#include "tune/search.h"

using namespace helix;
using model::i64;

namespace {

bool is_helix(const std::string& family) {
  return family.rfind("helix", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool tune_mode = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tune") == 0) {
      tune_mode = true;
    } else {
      pos.push_back(argv[i]);
    }
  }
  const model::ModelConfig mc =
      model::model_by_name(pos.size() > 0 ? pos[0] : "7B");
  const i64 seq = pos.size() > 1 ? std::atoll(pos[1]) : 131072;
  const model::ClusterSpec cluster =
      model::cluster_by_name(pos.size() > 2 ? pos[2] : "H20");

  std::printf("Planning %s model at %lldk tokens on the %s cluster\n\n",
              mc.name.c_str(), static_cast<long long>(seq / 1024),
              cluster.name.c_str());

  // Build the full grid: every pipeline size x every registered family.
  // Cost models are owned here and must outlive the sweep (items borrow
  // them); one PaperCostModel per pipeline size.
  const auto& families = schedules::family_registry();
  std::vector<std::unique_ptr<model::PaperCostModel>> costs;
  std::vector<sim::SweepItem> items;
  std::vector<int> item_p;  // pipeline size per item, for printing
  struct PlanPoint {       // one per pipeline size, kept for --tune
    int p;
    core::PipelineProblem pr;
    const model::PaperCostModel* cost;
    std::vector<i64> hx_base;
  };
  std::vector<PlanPoint> points;
  for (const int p : {2, 4, 8}) {
    if (mc.num_layers % p != 0) continue;
    const model::TrainSetup setup{.seq_len = seq, .micro_batch = 1, .pipeline = p,
                                  .micro_batches = 2 * p, .sp = 8};
    const auto pr = model::make_problem(mc, setup);
    const model::LayerDims dims{.s = seq, .b = 1, .h = mc.hidden};
    costs.push_back(std::make_unique<model::PaperCostModel>(
        model::TimingModel(cluster, {}, setup.sp), mc, dims, p));
    const model::PaperCostModel* cost = costs.back().get();
    const auto lw_base = model::layerwise_base_memory(mc, setup);
    const auto hx_base = model::helix_base_memory(mc, setup);
    points.push_back({p, pr, cost, hx_base});
    for (const auto& fam : families) {
      items.push_back({fam.key, pr, cost, is_helix(fam.key) ? hx_base : lw_base});
      item_p.push_back(p);
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  sim::Sweep sweep;
  const std::vector<sim::SweepOutcome> results = sweep.run(items);
  const double sweep_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::printf("%-4s %-6s %-16s %12s %12s %10s\n", "p", "GPUs", "schedule",
              "iter (s)", "tokens/s", "peak GiB");
  double best_tps = 0;
  std::string best;
  int last_p = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const int p = item_p[i];
    if (p != last_p && last_p != 0) std::printf("\n");
    last_p = p;
    const sim::SweepOutcome& r = results[i];
    if (!r.ok) {
      std::printf("%-4d %-6d %-16s %12s (%s)\n", p, 8 * p,
                  items[i].family.c_str(), "-", r.error.c_str());
      continue;
    }
    const bool oom = r.max_peak_memory > cluster.gpu.mem_bytes;
    const double tps = 2.0 * p * static_cast<double>(seq) / r.makespan;
    std::printf("%-4d %-6d %-16s %12.2f %12.0f %9.1f%s\n", p, 8 * p,
                items[i].family.c_str(), r.makespan, tps,
                static_cast<double>(r.max_peak_memory) / (1ull << 30),
                oom ? " OOM" : "");
    if (!oom && tps > best_tps) {
      best_tps = tps;
      best = items[i].family + " with p=" + std::to_string(p) + " (" +
             std::to_string(8 * p) + " GPUs)";
    }
  }

  if (tune_mode) {
    // Beam-search each pipeline size, seeded from every applicable family
    // and capped at the GPU's memory so the winner is feasible by
    // construction. Helix base memory is the conservative resident-state
    // estimate for mixed-family seeding. Short fixed budget: the planner
    // wants a quick "is there headroom?" answer, not an exhaustive tune.
    std::printf("\nAutotuned (seeded from every applicable family):\n");
    std::printf("%-4s %-6s %12s %12s %10s  %s\n", "p", "GPUs", "iter (s)",
                "tokens/s", "peak GiB", "lineage");
    tune::TuneOptions topt;
    topt.beam_width = 4;
    topt.generations = 10;
    topt.children_per_parent = 6;
    topt.patience = 4;
    topt.memory_cap_bytes = cluster.gpu.mem_bytes;
    for (const PlanPoint& pt : points) {
      const tune::TuneReport rep =
          tune::tune(pt.pr, *pt.cost, topt, &sweep, pt.hx_base);
      if (!rep.best.outcome.ok) {
        std::printf("%-4d %-6d %12s (%s)\n", pt.p, 8 * pt.p, "-",
                    rep.best.outcome.error.c_str());
        continue;
      }
      const bool oom = rep.best.outcome.max_peak_memory > cluster.gpu.mem_bytes;
      const double tps =
          2.0 * pt.p * static_cast<double>(seq) / rep.best.outcome.makespan;
      std::printf("%-4d %-6d %12.2f %12.0f %9.1f%s  %s\n", pt.p, 8 * pt.p,
                  rep.best.outcome.makespan, tps,
                  static_cast<double>(rep.best.outcome.max_peak_memory) /
                      (1ull << 30),
                  oom ? " OOM" : "", rep.best.lineage.c_str());
      if (!oom && tps > best_tps) {
        best_tps = tps;
        best = "tuned " + rep.best.lineage + " with p=" + std::to_string(pt.p) +
               " (" + std::to_string(8 * pt.p) + " GPUs)";
      }
    }
  }

  const sim::SweepStats st = sweep.stats();
  std::printf("\nRecommendation: %s — %.0f tokens/s.\n", best.c_str(), best_tps);
  std::printf("(Throughput is per iteration of 2p micro batches; per-GPU\n"
              "efficiency favours smaller p, wall-clock favours larger.)\n");
  std::printf(
      "\nSweep: %lld configs (%lld simulated, %lld cached, %lld inapplicable) "
      "in %.3f s — %.0f configs/s.\n",
      static_cast<long long>(st.items), static_cast<long long>(st.evaluated),
      static_cast<long long>(st.cache_hits), static_cast<long long>(st.failed),
      sweep_s, static_cast<double>(st.items) / sweep_s);
  return 0;
}
