// Quickstart: build a HelixPipe schedule for a 7B GPT at 128k sequence
// length on 8 H20 nodes, validate it, simulate one training iteration, and
// compare against 1F1B. Mirrors the README's 60-second tour of the API.
#include <cstdio>

#include "core/filo.h"
#include "core/validator.h"
#include "model/gpu_specs.h"
#include "model/model_config.h"
#include "model/paper_cost.h"
#include "model/problem_factory.h"
#include "schedules/layerwise.h"
#include "sim/simulator.h"

using namespace helix;

int main() {
  // 1. Describe the training job: model, cluster, parallelism.
  const model::ModelConfig gpt = model::gpt_7b();
  const model::ClusterSpec cluster = model::h20_cluster();
  const model::TrainSetup setup{.seq_len = 131072,
                                .micro_batch = 1,
                                .pipeline = 8,
                                .micro_batches = 16,  // global batch = 2p
                                .sp = 8};

  // 2. Build the HelixPipe schedule (attention parallel partition +
  //    two-fold FILO + recomputation without attention).
  const core::PipelineProblem problem = model::make_problem(gpt, setup);
  const core::Schedule helix = core::build_helix_schedule(
      problem, {.two_fold = true, .recompute_without_attention = true});

  // 3. Validate it: matched transfers, acyclic, per-micro-batch program
  //    order preserved (the convergence-preservation invariant).
  const auto validation = core::validate_structure(helix);
  std::printf("schedule '%s': %zu ops across %d stages — %s\n",
              helix.name.c_str(), helix.total_ops(), helix.num_stages,
              validation.ok ? "valid" : "INVALID");

  // 4. Price it with the hardware timing model and simulate one iteration.
  const model::LayerDims dims{.s = setup.seq_len, .b = 1, .h = gpt.hidden};
  const model::PaperCostModel cost(model::TimingModel(cluster, {}, setup.sp),
                                   gpt, dims, setup.pipeline);
  const auto base_mem = model::helix_base_memory(gpt, setup);
  const sim::SimResult res = sim::Simulator(cost).run(helix, base_mem);

  const double tokens = static_cast<double>(setup.micro_batches) *
                        static_cast<double>(setup.seq_len);
  std::printf("HelixPipe: %.2f s/iteration, %.0f tokens/s, peak %.1f GiB/GPU\n",
              res.makespan, tokens / res.makespan,
              static_cast<double>(res.max_peak_memory()) / (1ull << 30));

  // 5. Compare with 1F1B on the same problem.
  const auto f1b = sim::Simulator(cost).run(schedules::build_1f1b(problem),
                                            model::layerwise_base_memory(gpt, setup));
  std::printf("1F1B:      %.2f s/iteration, %.0f tokens/s, peak %.1f GiB/GPU\n",
              f1b.makespan, tokens / f1b.makespan,
              static_cast<double>(f1b.max_peak_memory()) / (1ull << 30));
  std::printf("HelixPipe speedup: %.1f%%\n",
              100.0 * (f1b.makespan / res.makespan - 1.0));
  return 0;
}
