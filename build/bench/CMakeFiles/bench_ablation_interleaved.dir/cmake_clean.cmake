file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interleaved.dir/bench_ablation_interleaved.cpp.o"
  "CMakeFiles/bench_ablation_interleaved.dir/bench_ablation_interleaved.cpp.o.d"
  "bench_ablation_interleaved"
  "bench_ablation_interleaved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interleaved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
