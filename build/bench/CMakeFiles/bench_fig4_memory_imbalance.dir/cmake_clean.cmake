file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_memory_imbalance.dir/bench_fig4_memory_imbalance.cpp.o"
  "CMakeFiles/bench_fig4_memory_imbalance.dir/bench_fig4_memory_imbalance.cpp.o.d"
  "bench_fig4_memory_imbalance"
  "bench_fig4_memory_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_memory_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
