# Empty dependencies file for bench_fig7_overlap.
# This may be replaced when dependencies are built.
