
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_overlap.cpp" "bench/CMakeFiles/bench_fig7_overlap.dir/bench_fig7_overlap.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_overlap.dir/bench_fig7_overlap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/helix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_schedules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
