# Empty dependencies file for bench_fig9_comm_overlap.
# This may be replaced when dependencies are built.
