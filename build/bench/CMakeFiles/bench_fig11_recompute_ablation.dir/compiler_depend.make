# Empty compiler generated dependencies file for bench_fig11_recompute_ablation.
# This may be replaced when dependencies are built.
