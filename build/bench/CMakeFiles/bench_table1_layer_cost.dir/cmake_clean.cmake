file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_layer_cost.dir/bench_table1_layer_cost.cpp.o"
  "CMakeFiles/bench_table1_layer_cost.dir/bench_table1_layer_cost.cpp.o.d"
  "bench_table1_layer_cost"
  "bench_table1_layer_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_layer_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
