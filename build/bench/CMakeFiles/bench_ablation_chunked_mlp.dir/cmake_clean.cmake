file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_chunked_mlp.dir/bench_ablation_chunked_mlp.cpp.o"
  "CMakeFiles/bench_ablation_chunked_mlp.dir/bench_ablation_chunked_mlp.cpp.o.d"
  "bench_ablation_chunked_mlp"
  "bench_ablation_chunked_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_chunked_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
