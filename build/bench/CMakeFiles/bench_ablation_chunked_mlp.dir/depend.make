# Empty dependencies file for bench_ablation_chunked_mlp.
# This may be replaced when dependencies are built.
