file(REMOVE_RECURSE
  "CMakeFiles/helix_nn.dir/nn/model.cpp.o"
  "CMakeFiles/helix_nn.dir/nn/model.cpp.o.d"
  "CMakeFiles/helix_nn.dir/nn/parts.cpp.o"
  "CMakeFiles/helix_nn.dir/nn/parts.cpp.o.d"
  "CMakeFiles/helix_nn.dir/nn/reference.cpp.o"
  "CMakeFiles/helix_nn.dir/nn/reference.cpp.o.d"
  "CMakeFiles/helix_nn.dir/nn/sequence_parallel.cpp.o"
  "CMakeFiles/helix_nn.dir/nn/sequence_parallel.cpp.o.d"
  "libhelix_nn.a"
  "libhelix_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
