
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/helix_nn.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/helix_nn.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/parts.cpp" "src/CMakeFiles/helix_nn.dir/nn/parts.cpp.o" "gcc" "src/CMakeFiles/helix_nn.dir/nn/parts.cpp.o.d"
  "/root/repo/src/nn/reference.cpp" "src/CMakeFiles/helix_nn.dir/nn/reference.cpp.o" "gcc" "src/CMakeFiles/helix_nn.dir/nn/reference.cpp.o.d"
  "/root/repo/src/nn/sequence_parallel.cpp" "src/CMakeFiles/helix_nn.dir/nn/sequence_parallel.cpp.o" "gcc" "src/CMakeFiles/helix_nn.dir/nn/sequence_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/helix_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
