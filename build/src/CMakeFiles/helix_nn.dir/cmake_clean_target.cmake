file(REMOVE_RECURSE
  "libhelix_nn.a"
)
