# Empty compiler generated dependencies file for helix_nn.
# This may be replaced when dependencies are built.
