
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/interpreter.cpp" "src/CMakeFiles/helix_runtime.dir/runtime/interpreter.cpp.o" "gcc" "src/CMakeFiles/helix_runtime.dir/runtime/interpreter.cpp.o.d"
  "/root/repo/src/runtime/trainer.cpp" "src/CMakeFiles/helix_runtime.dir/runtime/trainer.cpp.o" "gcc" "src/CMakeFiles/helix_runtime.dir/runtime/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/helix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_schedules.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/helix_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
