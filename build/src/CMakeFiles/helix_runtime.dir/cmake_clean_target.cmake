file(REMOVE_RECURSE
  "libhelix_runtime.a"
)
