file(REMOVE_RECURSE
  "CMakeFiles/helix_runtime.dir/runtime/interpreter.cpp.o"
  "CMakeFiles/helix_runtime.dir/runtime/interpreter.cpp.o.d"
  "CMakeFiles/helix_runtime.dir/runtime/trainer.cpp.o"
  "CMakeFiles/helix_runtime.dir/runtime/trainer.cpp.o.d"
  "libhelix_runtime.a"
  "libhelix_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
