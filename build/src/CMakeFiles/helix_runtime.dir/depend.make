# Empty dependencies file for helix_runtime.
# This may be replaced when dependencies are built.
