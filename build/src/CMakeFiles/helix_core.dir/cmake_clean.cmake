file(REMOVE_RECURSE
  "CMakeFiles/helix_core.dir/core/filo.cpp.o"
  "CMakeFiles/helix_core.dir/core/filo.cpp.o.d"
  "CMakeFiles/helix_core.dir/core/ir.cpp.o"
  "CMakeFiles/helix_core.dir/core/ir.cpp.o.d"
  "CMakeFiles/helix_core.dir/core/reorder.cpp.o"
  "CMakeFiles/helix_core.dir/core/reorder.cpp.o.d"
  "CMakeFiles/helix_core.dir/core/validator.cpp.o"
  "CMakeFiles/helix_core.dir/core/validator.cpp.o.d"
  "libhelix_core.a"
  "libhelix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
