
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/filo.cpp" "src/CMakeFiles/helix_core.dir/core/filo.cpp.o" "gcc" "src/CMakeFiles/helix_core.dir/core/filo.cpp.o.d"
  "/root/repo/src/core/ir.cpp" "src/CMakeFiles/helix_core.dir/core/ir.cpp.o" "gcc" "src/CMakeFiles/helix_core.dir/core/ir.cpp.o.d"
  "/root/repo/src/core/reorder.cpp" "src/CMakeFiles/helix_core.dir/core/reorder.cpp.o" "gcc" "src/CMakeFiles/helix_core.dir/core/reorder.cpp.o.d"
  "/root/repo/src/core/validator.cpp" "src/CMakeFiles/helix_core.dir/core/validator.cpp.o" "gcc" "src/CMakeFiles/helix_core.dir/core/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
