file(REMOVE_RECURSE
  "libhelix_core.a"
)
