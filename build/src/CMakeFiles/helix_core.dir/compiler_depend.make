# Empty compiler generated dependencies file for helix_core.
# This may be replaced when dependencies are built.
