file(REMOVE_RECURSE
  "libhelix_model.a"
)
