
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/analysis.cpp" "src/CMakeFiles/helix_model.dir/model/analysis.cpp.o" "gcc" "src/CMakeFiles/helix_model.dir/model/analysis.cpp.o.d"
  "/root/repo/src/model/gpu_specs.cpp" "src/CMakeFiles/helix_model.dir/model/gpu_specs.cpp.o" "gcc" "src/CMakeFiles/helix_model.dir/model/gpu_specs.cpp.o.d"
  "/root/repo/src/model/layer_cost.cpp" "src/CMakeFiles/helix_model.dir/model/layer_cost.cpp.o" "gcc" "src/CMakeFiles/helix_model.dir/model/layer_cost.cpp.o.d"
  "/root/repo/src/model/memory.cpp" "src/CMakeFiles/helix_model.dir/model/memory.cpp.o" "gcc" "src/CMakeFiles/helix_model.dir/model/memory.cpp.o.d"
  "/root/repo/src/model/model_config.cpp" "src/CMakeFiles/helix_model.dir/model/model_config.cpp.o" "gcc" "src/CMakeFiles/helix_model.dir/model/model_config.cpp.o.d"
  "/root/repo/src/model/paper_cost.cpp" "src/CMakeFiles/helix_model.dir/model/paper_cost.cpp.o" "gcc" "src/CMakeFiles/helix_model.dir/model/paper_cost.cpp.o.d"
  "/root/repo/src/model/problem_factory.cpp" "src/CMakeFiles/helix_model.dir/model/problem_factory.cpp.o" "gcc" "src/CMakeFiles/helix_model.dir/model/problem_factory.cpp.o.d"
  "/root/repo/src/model/timing.cpp" "src/CMakeFiles/helix_model.dir/model/timing.cpp.o" "gcc" "src/CMakeFiles/helix_model.dir/model/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/helix_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
