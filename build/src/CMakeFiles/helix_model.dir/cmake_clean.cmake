file(REMOVE_RECURSE
  "CMakeFiles/helix_model.dir/model/analysis.cpp.o"
  "CMakeFiles/helix_model.dir/model/analysis.cpp.o.d"
  "CMakeFiles/helix_model.dir/model/gpu_specs.cpp.o"
  "CMakeFiles/helix_model.dir/model/gpu_specs.cpp.o.d"
  "CMakeFiles/helix_model.dir/model/layer_cost.cpp.o"
  "CMakeFiles/helix_model.dir/model/layer_cost.cpp.o.d"
  "CMakeFiles/helix_model.dir/model/memory.cpp.o"
  "CMakeFiles/helix_model.dir/model/memory.cpp.o.d"
  "CMakeFiles/helix_model.dir/model/model_config.cpp.o"
  "CMakeFiles/helix_model.dir/model/model_config.cpp.o.d"
  "CMakeFiles/helix_model.dir/model/paper_cost.cpp.o"
  "CMakeFiles/helix_model.dir/model/paper_cost.cpp.o.d"
  "CMakeFiles/helix_model.dir/model/problem_factory.cpp.o"
  "CMakeFiles/helix_model.dir/model/problem_factory.cpp.o.d"
  "CMakeFiles/helix_model.dir/model/timing.cpp.o"
  "CMakeFiles/helix_model.dir/model/timing.cpp.o.d"
  "libhelix_model.a"
  "libhelix_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
