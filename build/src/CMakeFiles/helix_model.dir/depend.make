# Empty dependencies file for helix_model.
# This may be replaced when dependencies are built.
