
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedules/adapipe.cpp" "src/CMakeFiles/helix_schedules.dir/schedules/adapipe.cpp.o" "gcc" "src/CMakeFiles/helix_schedules.dir/schedules/adapipe.cpp.o.d"
  "/root/repo/src/schedules/interleaved.cpp" "src/CMakeFiles/helix_schedules.dir/schedules/interleaved.cpp.o" "gcc" "src/CMakeFiles/helix_schedules.dir/schedules/interleaved.cpp.o.d"
  "/root/repo/src/schedules/layerwise.cpp" "src/CMakeFiles/helix_schedules.dir/schedules/layerwise.cpp.o" "gcc" "src/CMakeFiles/helix_schedules.dir/schedules/layerwise.cpp.o.d"
  "/root/repo/src/schedules/step_cost.cpp" "src/CMakeFiles/helix_schedules.dir/schedules/step_cost.cpp.o" "gcc" "src/CMakeFiles/helix_schedules.dir/schedules/step_cost.cpp.o.d"
  "/root/repo/src/schedules/zb1p.cpp" "src/CMakeFiles/helix_schedules.dir/schedules/zb1p.cpp.o" "gcc" "src/CMakeFiles/helix_schedules.dir/schedules/zb1p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/helix_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
