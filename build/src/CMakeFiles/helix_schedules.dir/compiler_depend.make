# Empty compiler generated dependencies file for helix_schedules.
# This may be replaced when dependencies are built.
