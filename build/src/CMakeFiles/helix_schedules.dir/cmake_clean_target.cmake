file(REMOVE_RECURSE
  "libhelix_schedules.a"
)
