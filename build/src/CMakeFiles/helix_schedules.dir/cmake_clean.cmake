file(REMOVE_RECURSE
  "CMakeFiles/helix_schedules.dir/schedules/adapipe.cpp.o"
  "CMakeFiles/helix_schedules.dir/schedules/adapipe.cpp.o.d"
  "CMakeFiles/helix_schedules.dir/schedules/interleaved.cpp.o"
  "CMakeFiles/helix_schedules.dir/schedules/interleaved.cpp.o.d"
  "CMakeFiles/helix_schedules.dir/schedules/layerwise.cpp.o"
  "CMakeFiles/helix_schedules.dir/schedules/layerwise.cpp.o.d"
  "CMakeFiles/helix_schedules.dir/schedules/step_cost.cpp.o"
  "CMakeFiles/helix_schedules.dir/schedules/step_cost.cpp.o.d"
  "CMakeFiles/helix_schedules.dir/schedules/zb1p.cpp.o"
  "CMakeFiles/helix_schedules.dir/schedules/zb1p.cpp.o.d"
  "libhelix_schedules.a"
  "libhelix_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
