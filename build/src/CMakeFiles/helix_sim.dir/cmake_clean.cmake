file(REMOVE_RECURSE
  "CMakeFiles/helix_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/helix_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/helix_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/helix_sim.dir/sim/trace.cpp.o.d"
  "libhelix_sim.a"
  "libhelix_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
