# Empty compiler generated dependencies file for helix_sim.
# This may be replaced when dependencies are built.
