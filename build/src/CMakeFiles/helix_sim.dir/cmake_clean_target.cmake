file(REMOVE_RECURSE
  "libhelix_sim.a"
)
