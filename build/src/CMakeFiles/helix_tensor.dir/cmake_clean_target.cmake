file(REMOVE_RECURSE
  "libhelix_tensor.a"
)
