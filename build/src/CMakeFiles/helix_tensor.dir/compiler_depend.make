# Empty compiler generated dependencies file for helix_tensor.
# This may be replaced when dependencies are built.
