file(REMOVE_RECURSE
  "CMakeFiles/helix_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/helix_tensor.dir/tensor/ops.cpp.o.d"
  "CMakeFiles/helix_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/helix_tensor.dir/tensor/tensor.cpp.o.d"
  "libhelix_tensor.a"
  "libhelix_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
