# Empty dependencies file for helix_comm.
# This may be replaced when dependencies are built.
