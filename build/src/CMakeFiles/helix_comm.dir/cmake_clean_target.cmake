file(REMOVE_RECURSE
  "libhelix_comm.a"
)
