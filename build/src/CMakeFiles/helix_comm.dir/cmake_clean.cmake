file(REMOVE_RECURSE
  "CMakeFiles/helix_comm.dir/comm/world.cpp.o"
  "CMakeFiles/helix_comm.dir/comm/world.cpp.o.d"
  "libhelix_comm.a"
  "libhelix_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
