file(REMOVE_RECURSE
  "libhelix_mem.a"
)
