file(REMOVE_RECURSE
  "CMakeFiles/helix_mem.dir/mem/caching_allocator.cpp.o"
  "CMakeFiles/helix_mem.dir/mem/caching_allocator.cpp.o.d"
  "CMakeFiles/helix_mem.dir/mem/workload.cpp.o"
  "CMakeFiles/helix_mem.dir/mem/workload.cpp.o.d"
  "libhelix_mem.a"
  "libhelix_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/helix_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
