# Empty compiler generated dependencies file for helix_mem.
# This may be replaced when dependencies are built.
