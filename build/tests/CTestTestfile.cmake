# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_schedule_validation_test[1]_include.cmake")
include("/root/repo/build/tests/sim_bubble_formula_test[1]_include.cmake")
include("/root/repo/build/tests/model_layer_cost_test[1]_include.cmake")
include("/root/repo/build/tests/model_and_memory_test[1]_include.cmake")
include("/root/repo/build/tests/model_timing_test[1]_include.cmake")
include("/root/repo/build/tests/sim_memory_peak_test[1]_include.cmake")
include("/root/repo/build/tests/mem_caching_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_ops_grad_test[1]_include.cmake")
include("/root/repo/build/tests/nn_parts_test[1]_include.cmake")
include("/root/repo/build/tests/comm_world_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_adam_equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/core_reorder_test[1]_include.cmake")
include("/root/repo/build/tests/schedules_planner_test[1]_include.cmake")
include("/root/repo/build/tests/sim_trace_test[1]_include.cmake")
include("/root/repo/build/tests/model_problem_factory_test[1]_include.cmake")
include("/root/repo/build/tests/core_validator_negative_test[1]_include.cmake")
include("/root/repo/build/tests/schedules_interleaved_test[1]_include.cmake")
include("/root/repo/build/tests/nn_sequence_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/core_schedule_fuzz_test[1]_include.cmake")
