file(REMOVE_RECURSE
  "CMakeFiles/core_schedule_validation_test.dir/core/schedule_validation_test.cpp.o"
  "CMakeFiles/core_schedule_validation_test.dir/core/schedule_validation_test.cpp.o.d"
  "core_schedule_validation_test"
  "core_schedule_validation_test.pdb"
  "core_schedule_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_schedule_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
