# Empty dependencies file for core_schedule_validation_test.
# This may be replaced when dependencies are built.
