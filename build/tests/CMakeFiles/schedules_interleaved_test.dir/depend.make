# Empty dependencies file for schedules_interleaved_test.
# This may be replaced when dependencies are built.
