file(REMOVE_RECURSE
  "CMakeFiles/schedules_interleaved_test.dir/schedules/interleaved_test.cpp.o"
  "CMakeFiles/schedules_interleaved_test.dir/schedules/interleaved_test.cpp.o.d"
  "schedules_interleaved_test"
  "schedules_interleaved_test.pdb"
  "schedules_interleaved_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedules_interleaved_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
