file(REMOVE_RECURSE
  "CMakeFiles/runtime_adam_equivalence_test.dir/runtime/adam_equivalence_test.cpp.o"
  "CMakeFiles/runtime_adam_equivalence_test.dir/runtime/adam_equivalence_test.cpp.o.d"
  "runtime_adam_equivalence_test"
  "runtime_adam_equivalence_test.pdb"
  "runtime_adam_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_adam_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
