# Empty dependencies file for runtime_adam_equivalence_test.
# This may be replaced when dependencies are built.
