file(REMOVE_RECURSE
  "CMakeFiles/model_and_memory_test.dir/model/model_and_memory_test.cpp.o"
  "CMakeFiles/model_and_memory_test.dir/model/model_and_memory_test.cpp.o.d"
  "model_and_memory_test"
  "model_and_memory_test.pdb"
  "model_and_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_and_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
