# Empty compiler generated dependencies file for model_and_memory_test.
# This may be replaced when dependencies are built.
