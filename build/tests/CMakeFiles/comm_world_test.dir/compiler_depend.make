# Empty compiler generated dependencies file for comm_world_test.
# This may be replaced when dependencies are built.
