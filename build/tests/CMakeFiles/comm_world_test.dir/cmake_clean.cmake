file(REMOVE_RECURSE
  "CMakeFiles/comm_world_test.dir/comm/world_test.cpp.o"
  "CMakeFiles/comm_world_test.dir/comm/world_test.cpp.o.d"
  "comm_world_test"
  "comm_world_test.pdb"
  "comm_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
