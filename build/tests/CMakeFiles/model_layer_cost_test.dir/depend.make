# Empty dependencies file for model_layer_cost_test.
# This may be replaced when dependencies are built.
