file(REMOVE_RECURSE
  "CMakeFiles/model_layer_cost_test.dir/model/layer_cost_test.cpp.o"
  "CMakeFiles/model_layer_cost_test.dir/model/layer_cost_test.cpp.o.d"
  "model_layer_cost_test"
  "model_layer_cost_test.pdb"
  "model_layer_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_layer_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
