# Empty compiler generated dependencies file for runtime_equivalence_test.
# This may be replaced when dependencies are built.
