file(REMOVE_RECURSE
  "CMakeFiles/model_problem_factory_test.dir/model/problem_factory_test.cpp.o"
  "CMakeFiles/model_problem_factory_test.dir/model/problem_factory_test.cpp.o.d"
  "model_problem_factory_test"
  "model_problem_factory_test.pdb"
  "model_problem_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_problem_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
