# Empty dependencies file for model_problem_factory_test.
# This may be replaced when dependencies are built.
