# Empty dependencies file for schedules_planner_test.
# This may be replaced when dependencies are built.
