file(REMOVE_RECURSE
  "CMakeFiles/schedules_planner_test.dir/schedules/planner_test.cpp.o"
  "CMakeFiles/schedules_planner_test.dir/schedules/planner_test.cpp.o.d"
  "schedules_planner_test"
  "schedules_planner_test.pdb"
  "schedules_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedules_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
