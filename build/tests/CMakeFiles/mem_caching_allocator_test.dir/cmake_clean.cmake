file(REMOVE_RECURSE
  "CMakeFiles/mem_caching_allocator_test.dir/mem/caching_allocator_test.cpp.o"
  "CMakeFiles/mem_caching_allocator_test.dir/mem/caching_allocator_test.cpp.o.d"
  "mem_caching_allocator_test"
  "mem_caching_allocator_test.pdb"
  "mem_caching_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_caching_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
