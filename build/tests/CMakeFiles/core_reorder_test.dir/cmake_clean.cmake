file(REMOVE_RECURSE
  "CMakeFiles/core_reorder_test.dir/core/reorder_test.cpp.o"
  "CMakeFiles/core_reorder_test.dir/core/reorder_test.cpp.o.d"
  "core_reorder_test"
  "core_reorder_test.pdb"
  "core_reorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
