# Empty dependencies file for core_reorder_test.
# This may be replaced when dependencies are built.
