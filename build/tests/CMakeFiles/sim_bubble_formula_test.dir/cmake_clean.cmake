file(REMOVE_RECURSE
  "CMakeFiles/sim_bubble_formula_test.dir/sim/bubble_formula_test.cpp.o"
  "CMakeFiles/sim_bubble_formula_test.dir/sim/bubble_formula_test.cpp.o.d"
  "sim_bubble_formula_test"
  "sim_bubble_formula_test.pdb"
  "sim_bubble_formula_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_bubble_formula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
