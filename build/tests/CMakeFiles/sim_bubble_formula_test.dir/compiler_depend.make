# Empty compiler generated dependencies file for sim_bubble_formula_test.
# This may be replaced when dependencies are built.
