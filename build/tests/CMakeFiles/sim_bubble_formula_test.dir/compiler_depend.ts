# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sim_bubble_formula_test.
