# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for nn_sequence_parallel_test.
