# Empty compiler generated dependencies file for nn_sequence_parallel_test.
# This may be replaced when dependencies are built.
