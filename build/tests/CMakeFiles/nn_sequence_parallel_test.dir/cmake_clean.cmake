file(REMOVE_RECURSE
  "CMakeFiles/nn_sequence_parallel_test.dir/nn/sequence_parallel_test.cpp.o"
  "CMakeFiles/nn_sequence_parallel_test.dir/nn/sequence_parallel_test.cpp.o.d"
  "nn_sequence_parallel_test"
  "nn_sequence_parallel_test.pdb"
  "nn_sequence_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_sequence_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
