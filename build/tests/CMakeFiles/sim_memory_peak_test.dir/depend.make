# Empty dependencies file for sim_memory_peak_test.
# This may be replaced when dependencies are built.
