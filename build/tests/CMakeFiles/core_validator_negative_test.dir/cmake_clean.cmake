file(REMOVE_RECURSE
  "CMakeFiles/core_validator_negative_test.dir/core/validator_negative_test.cpp.o"
  "CMakeFiles/core_validator_negative_test.dir/core/validator_negative_test.cpp.o.d"
  "core_validator_negative_test"
  "core_validator_negative_test.pdb"
  "core_validator_negative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_validator_negative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
