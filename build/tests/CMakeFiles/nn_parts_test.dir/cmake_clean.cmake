file(REMOVE_RECURSE
  "CMakeFiles/nn_parts_test.dir/nn/parts_test.cpp.o"
  "CMakeFiles/nn_parts_test.dir/nn/parts_test.cpp.o.d"
  "nn_parts_test"
  "nn_parts_test.pdb"
  "nn_parts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_parts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
