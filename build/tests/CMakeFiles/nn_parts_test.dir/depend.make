# Empty dependencies file for nn_parts_test.
# This may be replaced when dependencies are built.
