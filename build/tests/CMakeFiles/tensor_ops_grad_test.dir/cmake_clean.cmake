file(REMOVE_RECURSE
  "CMakeFiles/tensor_ops_grad_test.dir/tensor/ops_grad_test.cpp.o"
  "CMakeFiles/tensor_ops_grad_test.dir/tensor/ops_grad_test.cpp.o.d"
  "tensor_ops_grad_test"
  "tensor_ops_grad_test.pdb"
  "tensor_ops_grad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_ops_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
