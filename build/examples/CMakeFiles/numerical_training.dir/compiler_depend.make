# Empty compiler generated dependencies file for numerical_training.
# This may be replaced when dependencies are built.
