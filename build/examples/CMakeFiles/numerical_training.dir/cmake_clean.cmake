file(REMOVE_RECURSE
  "CMakeFiles/numerical_training.dir/numerical_training.cpp.o"
  "CMakeFiles/numerical_training.dir/numerical_training.cpp.o.d"
  "numerical_training"
  "numerical_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numerical_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
